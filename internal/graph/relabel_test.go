package graph

import (
	"testing"

	"parcolor/internal/par"
	"parcolor/internal/rng"
)

func relabelTestGraphs() map[string]*Graph {
	return map[string]*Graph{
		"empty":     FromAdjacency([][]int32{}),
		"singleton": FromAdjacency([][]int32{{}}),
		"star":      Star(40),
		"complete":  Complete(12),
		"cycle":     Cycle(33),
		"gnp":       Gnp(300, 0.03, 7),
		"mixed":     Mixed(200, 5),
		"powerlaw":  ChungLu(400, 2.5, 12, 11),
	}
}

func TestDegreeSortedBijectionAndOrder(t *testing.T) {
	for name, g := range relabelTestGraphs() {
		rl := DegreeSorted(g)
		if err := rl.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Degrees are non-increasing along the new order.
		for i := 1; i < g.N(); i++ {
			if g.Degree(rl.OldOf[i]) > g.Degree(rl.OldOf[i-1]) {
				t.Fatalf("%s: degree order violated at %d", name, i)
			}
		}
		// Stable within equal degree: ids ascend inside a degree class.
		for i := 1; i < g.N(); i++ {
			if g.Degree(rl.OldOf[i]) == g.Degree(rl.OldOf[i-1]) && rl.OldOf[i] < rl.OldOf[i-1] {
				t.Fatalf("%s: stability violated at %d", name, i)
			}
		}
	}
}

func TestDegreeSortedRegularIsIdentity(t *testing.T) {
	g := Cycle(50)
	rl := DegreeSorted(g)
	for v := 0; v < g.N(); v++ {
		if rl.NewOf[v] != int32(v) || rl.OldOf[v] != int32(v) {
			t.Fatalf("regular graph relabeling not identity at %d", v)
		}
	}
}

func TestRelabelApplyPreservesStructure(t *testing.T) {
	r := par.NewRunner(0)
	for name, g := range relabelTestGraphs() {
		rl := DegreeSortedSharded(g, 64)
		pg := rl.Apply(r, g)
		if err := pg.Validate(); err != nil {
			t.Fatalf("%s: permuted graph invalid: %v", name, err)
		}
		if pg.N() != g.N() || pg.M() != g.M() {
			t.Fatalf("%s: size changed n=%d->%d m=%d->%d", name, g.N(), pg.N(), g.M(), pg.M())
		}
		for v := int32(0); int(v) < g.N(); v++ {
			if pg.Degree(rl.NewOf[v]) != g.Degree(v) {
				t.Fatalf("%s: degree of %d changed", name, v)
			}
			for _, u := range g.Neighbors(v) {
				if !pg.HasEdge(rl.NewOf[v], rl.NewOf[u]) {
					t.Fatalf("%s: edge (%d,%d) lost under relabeling", name, v, u)
				}
			}
		}
	}
}

func TestRelabelShardBudget(t *testing.T) {
	g := Gnp(500, 0.05, 3)
	budget := 128
	rl := DegreeSortedSharded(g, budget)
	if rl.NumShards() < 2 {
		t.Fatalf("expected multiple shards, got %d", rl.NumShards())
	}
	for s := 0; s < rl.NumShards(); s++ {
		lo, hi := rl.Shard(s)
		vol := 0
		for i := lo; i < hi; i++ {
			vol += g.Degree(rl.OldOf[i])
		}
		// A shard may exceed the budget only when it is a single vertex
		// whose degree alone does.
		if vol > budget && hi-lo > 1 {
			t.Fatalf("shard %d: volume %d over budget %d with %d vertices", s, vol, budget, hi-lo)
		}
	}
}

func TestMapBackRoundtrip(t *testing.T) {
	s := rng.New(rng.Hash2(5, 9))
	g := Gnp(250, 0.04, 4)
	rl := DegreeSorted(g)
	vals := make([]int32, g.N())
	for i := range vals {
		vals[i] = int32(s.Intn(1000))
	}
	back := rl.MapBack(rl.MapForward(vals))
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("roundtrip mismatch at %d: %d vs %d", i, back[i], vals[i])
		}
	}
	fwd := rl.MapForward(vals)
	for newID, old := range rl.OldOf {
		if fwd[newID] != vals[old] {
			t.Fatalf("forward map wrong at %d", newID)
		}
	}
}

func FuzzDegreeSortedBijection(f *testing.F) {
	f.Add(uint64(1), 50, 40)
	f.Add(uint64(7), 1, 0)
	f.Add(uint64(9), 200, 500)
	f.Fuzz(func(t *testing.T, seed uint64, n, extra int) {
		if n < 0 || n > 2000 || extra < 0 || extra > 5000 {
			t.Skip()
		}
		s := rng.New(rng.Hash2(seed, 0xF2))
		b := NewBuilder(n)
		for i := 0; i < extra && n > 1; i++ {
			b.AddEdge(int32(s.Intn(n)), int32(s.Intn(n)))
		}
		g := b.Build()
		rl := DegreeSortedSharded(g, 1+int(seed%512))
		if err := rl.Validate(); err != nil {
			t.Fatal(err)
		}
		pg := rl.Apply(par.NewRunner(0), g)
		if err := pg.Validate(); err != nil {
			t.Fatal(err)
		}
		if pg.M() != g.M() {
			t.Fatalf("edge count changed %d -> %d", g.M(), pg.M())
		}
	})
}
