package graph

// DegeneracyOrder computes a degeneracy ordering via the Matula–Beck
// bucket algorithm: repeatedly remove a minimum-degree node. It returns
// the removal order and the degeneracy (the largest minimum degree seen).
// Greedy list coloring in *reverse* removal order needs at most
// degeneracy+1 colors, the classical quality baseline the experiment
// tables compare round-efficient algorithms against.
func DegeneracyOrder(g *Graph) (order []int32, degeneracy int) {
	n := g.N()
	order = make([]int32, 0, n)
	if n == 0 {
		return order, 0
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue by current degree.
	buckets := make([][]int32, maxDeg+1)
	pos := make([]int, n) // index of v within its bucket
	for v := 0; v < n; v++ {
		pos[v] = len(buckets[deg[v]])
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	cur := 0
	for len(order) < n {
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] {
			continue
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, u := range g.Neighbors(v) {
			if removed[u] {
				continue
			}
			// Move u down one bucket (lazy deletion: stale entries are
			// skipped by the removed check; fresh position appended).
			du := deg[u]
			deg[u] = du - 1
			bu := buckets[du]
			// Swap-remove u's recorded slot if still valid.
			if pos[u] < len(bu) && bu[pos[u]] == u {
				last := bu[len(bu)-1]
				bu[pos[u]] = last
				if !removed[last] {
					pos[last] = pos[u]
				}
				buckets[du] = bu[:len(bu)-1]
			} else {
				// Stale slot: scan (rare; keeps the algorithm simple).
				for i, w := range bu {
					if w == u {
						last := bu[len(bu)-1]
						bu[i] = last
						pos[last] = i
						buckets[du] = bu[:len(bu)-1]
						break
					}
				}
			}
			pos[u] = len(buckets[du-1])
			buckets[du-1] = append(buckets[du-1], u)
			if du-1 < cur {
				cur = du - 1
			}
		}
	}
	return order, degeneracy
}
