// Package graph provides the compressed-sparse-row graph kernel shared by
// every algorithm in the repository: construction, generators for the
// workloads of the experiment suite, induced subgraphs (the self-reduction
// step of Definition 11), line graphs (the (2Δ−1)-edge-coloring reduction),
// bounded-radius power graphs (G^{4τ} for Lemma 10), and connected
// components (the shattering experiment E5).
//
// Graphs are simple and undirected. Nodes are int32 indices [0, n).
//
// # Construction at scale
//
// Two construction paths share the CSR layout:
//
//   - Builder accumulates an explicit edge list (duplicates and self-loops
//     tolerated) and builds in O(n+m): a counting placement scatters both
//     arc directions straight into the output adjacency array, then each
//     list is sorted and deduplicated independently — parallel across
//     nodes, no global comparison sort, no allocation beyond the output
//     (plus the caller's edge list, which is never larger than the output).
//
//   - StreamBuilder is the two-pass path for producers that can enumerate
//     their arcs twice (induced subgraphs, power graphs, streamed
//     generators): pass one counts per-node degrees, pass two writes arcs
//     directly into the final adjacency array. No intermediate edge list
//     exists at any point, so peak memory is exactly the output CSR.
//
// # Degree-sorted sharding (relabel.go)
//
// Relabeling permutes vertices into degree-sorted order and cuts the new
// id space into shards whose adjacency storage fits a cache budget.
// NewOf/OldOf are inverse bijections; a coloring computed on the relabeled
// graph maps back through OldOf exactly (MapColoringBack), so the layout
// is a pure optimization — solvers observe a relabeled instance, callers
// observe original ids, bit-for-bit.
package graph

import (
	"fmt"
	"slices"
	"sort"

	"parcolor/internal/par"
)

// Graph is an immutable undirected simple graph in CSR form.
// Adjacency lists are sorted ascending, which several algorithms rely on
// (sorted-merge intersection in the ACD, binary-search adjacency tests).
type Graph struct {
	offsets []int32 // len n+1
	adj     []int32 // len 2m, neighbor lists back to back
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// ArcOffset returns the index of v's first arc in the global CSR arc
// order (arc k of v is global arc ArcOffset(v)+k). Per-arc side tables —
// the shared common-neighbor counts of the parameter/ACD passes — are
// indexed with it.
func (g *Graph) ArcOffset(v int32) int { return int(g.offsets[v]) }

// HasEdge reports whether {u,v} is an edge, by binary search on the shorter
// adjacency list.
func (g *Graph) HasEdge(u, v int32) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// MaxDegree returns Δ, the maximum degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	maxD := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if d := g.Degree(v); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// Edges appends every edge {u,v} with u < v to dst and returns it.
func (g *Graph) Edges(dst [][2]int32) [][2]int32 {
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				dst = append(dst, [2]int32{u, v})
			}
		}
	}
	return dst
}

// Validate checks structural invariants (sortedness, symmetry, no loops,
// no duplicates) and returns a descriptive error on the first violation.
// It is used by generator tests and by property-based tests.
func (g *Graph) Validate() error {
	n := int32(g.N())
	for v := int32(0); v < n; v++ {
		ns := g.Neighbors(v)
		for i, u := range ns {
			if u < 0 || u >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && ns[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at %d", v, i)
			}
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: edge %d-%d not symmetric", v, u)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are dropped during Build, so generators may add carelessly.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for an n-node graph.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Reserve grows the edge buffer to hold at least m edges, so generators
// that know their size up front avoid append's geometric reallocation —
// at million-edge scale the doubling overshoot alone is tens of MB.
func (b *Builder) Reserve(m int) {
	if cap(b.edges) < m {
		b.edges = append(make([][2]int32, 0, m), b.edges...)
	}
}

// AddEdge records the undirected edge {u,v}. Out-of-range endpoints panic:
// they are programming errors in generators, not data errors.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range n=%d", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{u, v})
}

// Build constructs the CSR graph on the process-default worker bound.
// The builder may be reused afterwards. Construction inside a
// budget-scoped solve goes through BuildPar.
func (b *Builder) Build() *Graph { return b.BuildPar(nil) }

// BuildPar is Build with the per-node sort fan-out scoped to r's workers
// (nil = process default): leaf construction phases inside a solve honor
// the solve's budget instead of falling back to GOMAXPROCS.
//
// The build is O(n+m) counting placement plus independent per-node sorts:
// both arc directions scatter straight into the output adjacency array,
// then each list sorts and deduplicates in place. There is no global edge
// sort (the former comparison sort over the whole edge list was the
// super-linear, reflection-heavy step at million-edge scale), and the
// only allocation beyond the output CSR is one n+1 cursor array.
func (b *Builder) BuildPar(r *par.Runner) *Graph {
	// Counting placement: degrees including duplicates; per-list dedup
	// happens after the per-node sorts, followed by one compaction.
	counts := make([]int32, b.n+1)
	for _, e := range b.edges {
		counts[e[0]+1]++
		counts[e[1]+1]++
	}
	for i := 0; i < b.n; i++ {
		counts[i+1] += counts[i]
	}
	offsets := counts
	adj := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	for _, e := range b.edges {
		u, v := e[0], e[1]
		adj[int(offsets[u])+int(cursor[u])] = v
		cursor[u]++
		adj[int(offsets[v])+int(cursor[v])] = u
		cursor[v]++
	}
	// Sort and dedup each list independently; record the deduped lengths
	// in cursor for the compaction pass. Workers touch disjoint indices,
	// so the duplicate check is a sequential sum afterwards.
	r.ForChunked(b.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := adj[offsets[i]:offsets[i+1]]
			slices.Sort(s)
			cursor[i] = int32(dedupSorted(s))
		}
	})
	kept := 0
	for i := 0; i < b.n; i++ {
		kept += int(cursor[i])
	}
	if kept == len(adj) {
		return &Graph{offsets: offsets, adj: adj}
	}
	// Compact out the per-list tails the dedup left behind. Sequential
	// O(n+m); runs only when duplicates actually occurred.
	newOff := make([]int32, b.n+1)
	for i := 0; i < b.n; i++ {
		newOff[i+1] = newOff[i] + cursor[i]
	}
	w := int32(0)
	for i := 0; i < b.n; i++ {
		lo := offsets[i]
		copy(adj[w:], adj[lo:lo+cursor[i]])
		w += cursor[i]
	}
	return &Graph{offsets: newOff, adj: adj[:w:w]}
}

// dedupSorted compacts consecutive duplicates in a sorted slice in place
// and returns the deduplicated length.
func dedupSorted(s []int32) int {
	if len(s) < 2 {
		return len(s)
	}
	k := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[k-1] {
			s[k] = s[i]
			k++
		}
	}
	return k
}

// StreamBuilder constructs a CSR graph in two passes without ever holding
// an intermediate edge list: pass one counts each node's arcs (CountArc /
// CountEdge), pass two writes them directly into the final adjacency
// array (FillArc / FillEdge). Producers that can enumerate their arcs
// twice — induced subgraphs, power-graph balls, streamed generators — pay
// exactly the output CSR in memory, nothing else.
//
// The producer must emit the same multiset of arcs in both passes: every
// directed arc u→v exactly once (use CountEdge/FillEdge to emit both
// directions of an undirected edge at once), no self-loops, no
// duplicates. Finish checks the two passes agreed on every node's count
// and that each list is duplicate-free after sorting, returning an error
// otherwise.
type StreamBuilder struct {
	n       int
	offsets []int32 // counts during pass 1, prefix-summed by BeginFill
	cursor  []int32
	adj     []int32
	filling bool
}

// NewStreamBuilder returns a streaming builder for an n-node graph,
// starting in the counting pass.
func NewStreamBuilder(n int) *StreamBuilder {
	return &StreamBuilder{n: n, offsets: make([]int32, n+1)}
}

// CountArc records, during the counting pass, that u will receive one
// neighbor entry.
func (b *StreamBuilder) CountArc(u int32) { b.offsets[u+1]++ }

// CountArcs records k neighbor entries for u at once (a BFS ball's size,
// a filtered adjacency length).
func (b *StreamBuilder) CountArcs(u int32, k int) { b.offsets[u+1] += int32(k) }

// CountEdge counts both directions of the undirected edge {u,v}.
func (b *StreamBuilder) CountEdge(u, v int32) {
	b.offsets[u+1]++
	b.offsets[v+1]++
}

// BeginFill ends the counting pass: offsets are prefix-summed and the
// adjacency array is allocated at its exact final size.
func (b *StreamBuilder) BeginFill() {
	for i := 0; i < b.n; i++ {
		b.offsets[i+1] += b.offsets[i]
	}
	b.adj = make([]int32, b.offsets[b.n])
	b.cursor = make([]int32, b.n)
	b.filling = true
}

// FillArc writes, during the fill pass, the directed arc u→v.
func (b *StreamBuilder) FillArc(u, v int32) {
	b.adj[int(b.offsets[u])+int(b.cursor[u])] = v
	b.cursor[u]++
}

// FillEdge writes both directions of the undirected edge {u,v}.
func (b *StreamBuilder) FillEdge(u, v int32) {
	b.FillArc(u, v)
	b.FillArc(v, u)
}

// Finish sorts each adjacency list (parallel on r's workers; nil =
// process default) and returns the graph. sortedLists tells Finish the
// producer filled every list already sorted ascending (monotone mappings
// of sorted source lists), skipping the sort pass entirely. Finish errors
// if the two passes disagreed on any node's arc count or a list holds a
// duplicate or self-loop — a producer bug surfaced loudly rather than a
// corrupt graph.
func (b *StreamBuilder) Finish(r *par.Runner, sortedLists bool) (*Graph, error) {
	if !b.filling {
		return nil, fmt.Errorf("graph: StreamBuilder.Finish before BeginFill")
	}
	for i := 0; i < b.n; i++ {
		if got, want := b.cursor[i], b.offsets[i+1]-b.offsets[i]; got != want {
			return nil, fmt.Errorf("graph: StreamBuilder node %d filled %d arcs, counted %d", i, got, want)
		}
	}
	if !sortedLists {
		r.ForChunked(b.n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				slices.Sort(b.adj[b.offsets[i]:b.offsets[i+1]])
			}
		})
	}
	for i := 0; i < b.n; i++ {
		s := b.adj[b.offsets[i]:b.offsets[i+1]]
		for j := range s {
			if s[j] == int32(i) || (j > 0 && s[j-1] >= s[j]) {
				return nil, fmt.Errorf("graph: StreamBuilder node %d list invalid at %d (dup, unsorted or self-loop)", i, j)
			}
		}
	}
	return &Graph{offsets: b.offsets, adj: b.adj}, nil
}

// FromAdjacency constructs a graph directly from adjacency lists; used by
// tests and by quick-check shrinkers. Lists may be unsorted and contain
// duplicates; symmetry is completed automatically.
func FromAdjacency(lists [][]int32) *Graph {
	b := NewBuilder(len(lists))
	for u, ns := range lists {
		for _, v := range ns {
			b.AddEdge(int32(u), v)
		}
	}
	return b.Build()
}

// InducedSubgraph returns the subgraph induced by keep (any order, no
// duplicates) along with origOf mapping new indices to original ones.
// It is the graph half of D1LC self-reduction (Definition 11).
func InducedSubgraph(g *Graph, keep []int32) (sub *Graph, origOf []int32) {
	return InducedSubgraphPar(nil, g, keep)
}

// InducedSubgraphPar is InducedSubgraph with construction scoped to r's
// workers (nil = process default), so residue and bin sub-instances built
// inside a budget-scoped solve honor the solve's worker bound.
//
// The build is streaming: kept neighbors are located by binary search in
// the sorted keep set (no O(n) translation map, no per-call hashing), the
// counting pass sizes each adjacency list, and the fill pass writes the
// relabeled neighbors directly into the output CSR. Because origOf is
// ascending, the old→new mapping is monotone and every filled list is
// already sorted — the whole construction is comparison-sort-free.
func InducedSubgraphPar(r *par.Runner, g *Graph, keep []int32) (sub *Graph, origOf []int32) {
	origOf = append([]int32(nil), keep...)
	slices.Sort(origOf)
	k := len(origOf)
	b := NewStreamBuilder(k)
	// newIndex locates u in origOf, or -1. Galloping would help for very
	// sparse keeps; plain binary search keeps both passes identical.
	newIndex := func(u int32) int32 {
		i, ok := slices.BinarySearch(origOf, u)
		if !ok {
			return -1
		}
		return int32(i)
	}
	r.ForChunked(k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cnt := 0
			for _, u := range g.Neighbors(origOf[i]) {
				if newIndex(u) >= 0 {
					cnt++
				}
			}
			// Disjoint i per worker: CountArcs races with nothing.
			b.CountArcs(int32(i), cnt)
		}
	})
	b.BeginFill()
	r.ForChunked(k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for _, u := range g.Neighbors(origOf[i]) {
				if j := newIndex(u); j >= 0 {
					b.FillArc(int32(i), j)
				}
			}
		}
	})
	sub, err := b.Finish(r, true)
	if err != nil {
		panic(fmt.Sprintf("graph: induced subgraph construction: %v", err))
	}
	return sub, origOf
}

// LineGraph returns the line graph L(G) (nodes = edges of G, adjacency =
// sharing an endpoint) plus the list of original edges indexed by line-graph
// node. A proper (deg+1)-list coloring of L(G) with palettes of size
// 2Δ−1 yields a (2Δ−1)-edge coloring of G.
func LineGraph(g *Graph) (lg *Graph, edges [][2]int32) {
	edges = g.Edges(nil)
	idx := make(map[[2]int32]int32, len(edges))
	for i, e := range edges {
		idx[e] = int32(i)
	}
	b := NewBuilder(len(edges))
	for i, e := range edges {
		for _, end := range e {
			for _, w := range g.Neighbors(end) {
				other := [2]int32{end, w}
				if other[0] > other[1] {
					other[0], other[1] = other[1], other[0]
				}
				if j, ok := idx[other]; ok && int32(i) < j {
					b.AddEdge(int32(i), j)
				}
			}
		}
	}
	return b.Build(), edges
}

// BallBounded performs a BFS from v up to depth radius, appending every
// node at distance in [1, radius] to dst (excluding v itself) and returning
// it. If the ball exceeds maxSize nodes the traversal stops and ok is
// false; this is how callers enforce MPC local-space limits when collecting
// τ-hop neighborhoods (Lemma 17).
//
// scratch must be a caller-owned slice of length g.N() initialized to -1;
// it is restored to -1 before returning, so it can be reused across calls.
func BallBounded(g *Graph, v int32, radius, maxSize int, dst []int32, scratch []int32) (out []int32, ok bool) {
	out = dst[:0]
	if radius <= 0 {
		return out, true
	}
	scratch[v] = 0
	frontier := []int32{v}
	touched := []int32{v}
	ok = true
bfs:
	for depth := 1; depth <= radius && len(frontier) > 0; depth++ {
		var next []int32
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if scratch[w] >= 0 {
					continue
				}
				scratch[w] = int32(depth)
				touched = append(touched, w)
				out = append(out, w)
				next = append(next, w)
				if maxSize > 0 && len(out) > maxSize {
					ok = false
					break bfs
				}
			}
		}
		frontier = next
	}
	for _, u := range touched {
		scratch[u] = -1
	}
	if !ok {
		return out[:0], false
	}
	return out, true
}

// PowerGraph returns G^radius restricted to nodes whose balls stay within
// maxBall (0 = unbounded): nodes u,v are adjacent iff their distance in G
// is in [1, radius]. Used to build the G^{4τ} instance whose coloring
// assigns PRG chunks in Lemma 10.
func PowerGraph(g *Graph, radius, maxBall int) (*Graph, error) {
	return PowerGraphPar(nil, g, radius, maxBall)
}

// PowerGraphPar is PowerGraph with construction scoped to r's workers
// (nil = process default), so the power-graph build inside a
// budget-scoped solve honors the solve's worker bound.
//
// Construction is streaming and chunked: each worker re-runs the
// deterministic bounded BFS in a counting pass and a fill pass, writing
// every ball straight into the output CSR — no intermediate edge list.
// With maxBall > 0 the per-worker visited set is O(maxBall), not O(n):
// the scratch footprint is bounded by the output row size, so a
// space-budgeted chunk assignment never allocates a full node array per
// worker. Only the unbounded maxBall = 0 case falls back to per-worker
// O(n) stamp arrays (its output rows can be O(n) anyway).
func PowerGraphPar(r *par.Runner, g *Graph, radius, maxBall int) (*Graph, error) {
	n := g.N()
	b := NewStreamBuilder(n)
	workers := r.Workers(n)
	scratches := make([]*ballScratch, workers)
	errs := make([]error, workers)
	pass := func(fill bool) error {
		r.ForChunkedWorker(n, func(w, lo, hi int) {
			sc := scratches[w]
			if sc == nil {
				sc = newBallScratch(n, maxBall)
				scratches[w] = sc
			}
			for i := lo; i < hi; i++ {
				if errs[w] != nil {
					return
				}
				v := int32(i)
				ball, ok := sc.ball(g, v, radius, maxBall)
				if !ok {
					errs[w] = fmt.Errorf("graph: ball of %d exceeds limit %d in G^%d", v, maxBall, radius)
					return
				}
				if fill {
					for _, u := range ball {
						b.FillArc(v, u)
					}
				} else {
					b.CountArcs(v, len(ball))
				}
			}
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := pass(false); err != nil {
		return nil, err
	}
	b.BeginFill()
	if err := pass(true); err != nil {
		return nil, err
	}
	return b.Finish(r, false)
}

// ballScratch is one worker's reusable state for bounded-radius BFS. With
// a positive ball bound it tracks visited nodes in an open-addressing set
// of O(maxBall) slots; unbounded callers get the classic O(n) stamp
// array. Both variants produce identical deterministic traversals.
type ballScratch struct {
	stamp    []int32 // unbounded variant: node → -1 or visit marker
	keys     []int32 // bounded variant: open-addressing set, -1 = empty
	mask     uint32
	out      []int32 // ball accumulator, reused across calls
	frontier []int32
	next     []int32
}

func newBallScratch(n, maxBall int) *ballScratch {
	sc := &ballScratch{}
	if maxBall > 0 {
		size := uint32(8)
		for size < uint32(4*(maxBall+2)) {
			size <<= 1
		}
		sc.keys = make([]int32, size)
		for i := range sc.keys {
			sc.keys[i] = -1
		}
		sc.mask = size - 1
	} else {
		sc.stamp = make([]int32, n)
		for i := range sc.stamp {
			sc.stamp[i] = -1
		}
	}
	return sc
}

// visit marks v visited, reporting whether it was new.
func (sc *ballScratch) visit(v int32) bool {
	if sc.stamp != nil {
		if sc.stamp[v] >= 0 {
			return false
		}
		sc.stamp[v] = 0
		return true
	}
	h := uint32(v) * 2654435761 & sc.mask
	for {
		k := sc.keys[h]
		if k == v {
			return false
		}
		if k < 0 {
			sc.keys[h] = v
			return true
		}
		h = (h + 1) & sc.mask
	}
}

// reset clears the visited state touched by the last traversal.
func (sc *ballScratch) reset(touched []int32, center int32) {
	if sc.stamp != nil {
		sc.stamp[center] = -1
		for _, u := range touched {
			sc.stamp[u] = -1
		}
		return
	}
	for i := range sc.keys {
		sc.keys[i] = -1
	}
}

// ball runs the deterministic bounded BFS from v, returning all nodes at
// distance [1, radius] (aliasing sc.out; valid until the next call). ok
// is false when the ball exceeds maxBall > 0.
func (sc *ballScratch) ball(g *Graph, v int32, radius, maxBall int) (out []int32, ok bool) {
	sc.out = sc.out[:0]
	if radius <= 0 {
		return sc.out, true
	}
	sc.visit(v)
	sc.frontier = append(sc.frontier[:0], v)
	ok = true
bfs:
	for depth := 1; depth <= radius && len(sc.frontier) > 0; depth++ {
		sc.next = sc.next[:0]
		for _, u := range sc.frontier {
			for _, w := range g.Neighbors(u) {
				if !sc.visit(w) {
					continue
				}
				sc.out = append(sc.out, w)
				sc.next = append(sc.next, w)
				if maxBall > 0 && len(sc.out) > maxBall {
					ok = false
					break bfs
				}
			}
		}
		sc.frontier, sc.next = sc.next, sc.frontier
	}
	sc.reset(sc.out, v)
	if !ok {
		return sc.out[:0], false
	}
	return sc.out, true
}

// Components labels connected components; comp[v] is the component id of v
// (ids are dense, assigned in order of smallest member), and sizes[i] is the
// size of component i.
func Components(g *Graph) (comp []int32, sizes []int32) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	next := int32(0)
	for v := int32(0); v < int32(n); v++ {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = next
		size := int32(1)
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] < 0 {
					comp[w] = next
					size++
					queue = append(queue, w)
				}
			}
		}
		sizes = append(sizes, size)
		next++
	}
	return comp, sizes
}

// CountEdgesAmong returns the number of edges of g with both endpoints in
// set (given as a sorted slice). It is m(N(v)) in the sparsity parameter of
// Definition 2. The implementation iterates the smaller-degree side of each
// candidate pair via merge intersection, costing O(Σ_{u∈set} d(u)).
func CountEdgesAmong(g *Graph, set []int32) int64 {
	if len(set) < 2 {
		return 0
	}
	inSet := func(x int32) bool {
		i := sort.Search(len(set), func(i int) bool { return set[i] >= x })
		return i < len(set) && set[i] == x
	}
	var cnt int64
	for _, u := range set {
		for _, w := range g.Neighbors(u) {
			if w > u && inSet(w) {
				cnt++
			}
		}
	}
	return cnt
}
