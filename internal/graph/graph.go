// Package graph provides the compressed-sparse-row graph kernel shared by
// every algorithm in the repository: construction, generators for the
// workloads of the experiment suite, induced subgraphs (the self-reduction
// step of Definition 11), line graphs (the (2Δ−1)-edge-coloring reduction),
// bounded-radius power graphs (G^{4τ} for Lemma 10), and connected
// components (the shattering experiment E5).
//
// Graphs are simple and undirected. Nodes are int32 indices [0, n).
package graph

import (
	"fmt"
	"sort"

	"parcolor/internal/par"
)

// Graph is an immutable undirected simple graph in CSR form.
// Adjacency lists are sorted ascending, which several algorithms rely on
// (sorted-merge intersection in the ACD, binary-search adjacency tests).
type Graph struct {
	offsets []int32 // len n+1
	adj     []int32 // len 2m, neighbor lists back to back
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u,v} is an edge, by binary search on the shorter
// adjacency list.
func (g *Graph) HasEdge(u, v int32) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// MaxDegree returns Δ, the maximum degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	maxD := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if d := g.Degree(v); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// Edges appends every edge {u,v} with u < v to dst and returns it.
func (g *Graph) Edges(dst [][2]int32) [][2]int32 {
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				dst = append(dst, [2]int32{u, v})
			}
		}
	}
	return dst
}

// Validate checks structural invariants (sortedness, symmetry, no loops,
// no duplicates) and returns a descriptive error on the first violation.
// It is used by generator tests and by property-based tests.
func (g *Graph) Validate() error {
	n := int32(g.N())
	for v := int32(0); v < n; v++ {
		ns := g.Neighbors(v)
		for i, u := range ns {
			if u < 0 || u >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && ns[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at %d", v, i)
			}
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: edge %d-%d not symmetric", v, u)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are dropped during Build, so generators may add carelessly.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for an n-node graph.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v}. Out-of-range endpoints panic:
// they are programming errors in generators, not data errors.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range n=%d", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{u, v})
}

// Build constructs the CSR graph on the process-default worker bound.
// The builder may be reused afterwards. Construction inside a
// budget-scoped solve goes through BuildPar.
func (b *Builder) Build() *Graph { return b.BuildPar(nil) }

// BuildPar is Build with the adjacency-sort fan-out scoped to r's workers
// (nil = process default): leaf construction phases inside a solve honor
// the solve's budget instead of falling back to GOMAXPROCS.
func (b *Builder) BuildPar(r *par.Runner) *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	// Deduplicate.
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	deg := make([]int32, b.n+1)
	for _, e := range uniq {
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	for i := 0; i < b.n; i++ {
		deg[i+1] += deg[i]
	}
	offsets := deg
	adj := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	for _, e := range uniq {
		u, v := e[0], e[1]
		adj[offsets[u]+cursor[u]] = v
		cursor[u]++
		adj[offsets[v]+cursor[v]] = u
		cursor[v]++
	}
	g := &Graph{offsets: offsets, adj: adj}
	// Each list was filled in order of the second endpoint for the u side,
	// but the v side receives u out of order; sort each list.
	r.For(b.n, func(i int) {
		lo, hi := offsets[i], offsets[i+1]
		s := adj[lo:hi]
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	})
	return g
}

// FromAdjacency constructs a graph directly from adjacency lists; used by
// tests and by quick-check shrinkers. Lists may be unsorted and contain
// duplicates; symmetry is completed automatically.
func FromAdjacency(lists [][]int32) *Graph {
	b := NewBuilder(len(lists))
	for u, ns := range lists {
		for _, v := range ns {
			b.AddEdge(int32(u), v)
		}
	}
	return b.Build()
}

// InducedSubgraph returns the subgraph induced by keep (any order, no
// duplicates) along with origOf mapping new indices to original ones.
// It is the graph half of D1LC self-reduction (Definition 11).
func InducedSubgraph(g *Graph, keep []int32) (sub *Graph, origOf []int32) {
	return InducedSubgraphPar(nil, g, keep)
}

// InducedSubgraphPar is InducedSubgraph with construction scoped to r's
// workers (nil = process default), so residue and bin sub-instances built
// inside a budget-scoped solve honor the solve's worker bound.
func InducedSubgraphPar(r *par.Runner, g *Graph, keep []int32) (sub *Graph, origOf []int32) {
	origOf = append([]int32(nil), keep...)
	sort.Slice(origOf, func(i, j int) bool { return origOf[i] < origOf[j] })
	newOf := make(map[int32]int32, len(origOf))
	for i, v := range origOf {
		newOf[v] = int32(i)
	}
	b := NewBuilder(len(origOf))
	for i, v := range origOf {
		for _, u := range g.Neighbors(v) {
			if j, ok := newOf[u]; ok && int32(i) < j {
				b.AddEdge(int32(i), j)
			}
		}
	}
	return b.BuildPar(r), origOf
}

// LineGraph returns the line graph L(G) (nodes = edges of G, adjacency =
// sharing an endpoint) plus the list of original edges indexed by line-graph
// node. A proper (deg+1)-list coloring of L(G) with palettes of size
// 2Δ−1 yields a (2Δ−1)-edge coloring of G.
func LineGraph(g *Graph) (lg *Graph, edges [][2]int32) {
	edges = g.Edges(nil)
	idx := make(map[[2]int32]int32, len(edges))
	for i, e := range edges {
		idx[e] = int32(i)
	}
	b := NewBuilder(len(edges))
	for i, e := range edges {
		for _, end := range e {
			for _, w := range g.Neighbors(end) {
				other := [2]int32{end, w}
				if other[0] > other[1] {
					other[0], other[1] = other[1], other[0]
				}
				if j, ok := idx[other]; ok && int32(i) < j {
					b.AddEdge(int32(i), j)
				}
			}
		}
	}
	return b.Build(), edges
}

// BallBounded performs a BFS from v up to depth radius, appending every
// node at distance in [1, radius] to dst (excluding v itself) and returning
// it. If the ball exceeds maxSize nodes the traversal stops and ok is
// false; this is how callers enforce MPC local-space limits when collecting
// τ-hop neighborhoods (Lemma 17).
//
// scratch must be a caller-owned slice of length g.N() initialized to -1;
// it is restored to -1 before returning, so it can be reused across calls.
func BallBounded(g *Graph, v int32, radius, maxSize int, dst []int32, scratch []int32) (out []int32, ok bool) {
	out = dst[:0]
	if radius <= 0 {
		return out, true
	}
	scratch[v] = 0
	frontier := []int32{v}
	touched := []int32{v}
	ok = true
bfs:
	for depth := 1; depth <= radius && len(frontier) > 0; depth++ {
		var next []int32
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if scratch[w] >= 0 {
					continue
				}
				scratch[w] = int32(depth)
				touched = append(touched, w)
				out = append(out, w)
				next = append(next, w)
				if maxSize > 0 && len(out) > maxSize {
					ok = false
					break bfs
				}
			}
		}
		frontier = next
	}
	for _, u := range touched {
		scratch[u] = -1
	}
	if !ok {
		return out[:0], false
	}
	return out, true
}

// PowerGraph returns G^radius restricted to nodes whose balls stay within
// maxBall (0 = unbounded): nodes u,v are adjacent iff their distance in G
// is in [1, radius]. Used to build the G^{4τ} instance whose coloring
// assigns PRG chunks in Lemma 10.
func PowerGraph(g *Graph, radius, maxBall int) (*Graph, error) {
	return PowerGraphPar(nil, g, radius, maxBall)
}

// PowerGraphPar is PowerGraph with construction scoped to r's workers
// (nil = process default), so the power-graph build inside a
// budget-scoped solve honors the solve's worker bound.
func PowerGraphPar(r *par.Runner, g *Graph, radius, maxBall int) (*Graph, error) {
	n := g.N()
	b := NewBuilder(n)
	scratch := make([]int32, n)
	for i := range scratch {
		scratch[i] = -1
	}
	var ball []int32
	for v := int32(0); v < int32(n); v++ {
		var ok bool
		ball, ok = BallBounded(g, v, radius, maxBall, ball, scratch)
		if !ok {
			return nil, fmt.Errorf("graph: ball of %d exceeds limit %d in G^%d", v, maxBall, radius)
		}
		for _, u := range ball {
			if v < u {
				b.AddEdge(v, u)
			}
		}
	}
	return b.BuildPar(r), nil
}

// Components labels connected components; comp[v] is the component id of v
// (ids are dense, assigned in order of smallest member), and sizes[i] is the
// size of component i.
func Components(g *Graph) (comp []int32, sizes []int32) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	next := int32(0)
	for v := int32(0); v < int32(n); v++ {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = next
		size := int32(1)
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] < 0 {
					comp[w] = next
					size++
					queue = append(queue, w)
				}
			}
		}
		sizes = append(sizes, size)
		next++
	}
	return comp, sizes
}

// CountEdgesAmong returns the number of edges of g with both endpoints in
// set (given as a sorted slice). It is m(N(v)) in the sparsity parameter of
// Definition 2. The implementation iterates the smaller-degree side of each
// candidate pair via merge intersection, costing O(Σ_{u∈set} d(u)).
func CountEdgesAmong(g *Graph, set []int32) int64 {
	if len(set) < 2 {
		return 0
	}
	inSet := func(x int32) bool {
		i := sort.Search(len(set), func(i int) bool { return set[i] >= x })
		return i < len(set) && set[i] == x
	}
	var cnt int64
	for _, u := range set {
		for _, w := range g.Neighbors(u) {
			if w > u && inSet(w) {
				cnt++
			}
		}
	}
	return cnt
}
