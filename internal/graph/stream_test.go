package graph

import (
	"testing"

	"parcolor/internal/par"
	"parcolor/internal/rng"
)

// Differential test: StreamBuilder's two-pass construction must produce
// exactly the graph the one-shot Builder produces from the same edge set
// (duplicate-free input, since StreamBuilder requires exact counts).
func TestStreamBuilderMatchesBuilder(t *testing.T) {
	r := par.NewRunner(0)
	ref := Gnp(400, 0.03, 9)
	b := NewStreamBuilder(ref.N())
	for u := int32(0); int(u) < ref.N(); u++ {
		b.CountArcs(u, ref.Degree(u))
	}
	b.BeginFill()
	for u := int32(0); int(u) < ref.N(); u++ {
		for _, v := range ref.Neighbors(u) {
			b.FillArc(u, v)
		}
	}
	for _, sorted := range []bool{true, false} {
		// Fill order above is sorted, so both modes must agree.
		bb := NewStreamBuilder(ref.N())
		for u := int32(0); int(u) < ref.N(); u++ {
			bb.CountArcs(u, ref.Degree(u))
		}
		bb.BeginFill()
		for u := int32(0); int(u) < ref.N(); u++ {
			for _, v := range ref.Neighbors(u) {
				bb.FillArc(u, v)
			}
		}
		g, err := bb.Finish(r, sorted)
		if err != nil {
			t.Fatalf("sorted=%v: %v", sorted, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("sorted=%v: %v", sorted, err)
		}
		if g.N() != ref.N() || g.M() != ref.M() {
			t.Fatalf("sorted=%v: size mismatch", sorted)
		}
		for u := int32(0); int(u) < ref.N(); u++ {
			got, want := g.Neighbors(u), ref.Neighbors(u)
			if len(got) != len(want) {
				t.Fatalf("sorted=%v: degree of %d differs", sorted, u)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("sorted=%v: adjacency of %d differs", sorted, u)
				}
			}
		}
	}
}

func TestStreamBuilderUnsortedFill(t *testing.T) {
	// Fill arcs in reverse order; Finish(r, false) must sort them.
	r := par.NewRunner(0)
	ref := Mixed(150, 3)
	b := NewStreamBuilder(ref.N())
	for u := int32(0); int(u) < ref.N(); u++ {
		b.CountArcs(u, ref.Degree(u))
	}
	b.BeginFill()
	for u := int32(0); int(u) < ref.N(); u++ {
		nb := ref.Neighbors(u)
		for i := len(nb) - 1; i >= 0; i-- {
			b.FillArc(u, nb[i])
		}
	}
	g, err := b.Finish(r, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != ref.M() {
		t.Fatalf("m=%d want %d", g.M(), ref.M())
	}
}

func TestStreamBuilderRejectsBadFills(t *testing.T) {
	r := par.NewRunner(0)

	// Duplicate arc.
	b := NewStreamBuilder(2)
	b.CountEdge(0, 1)
	b.CountArc(0)
	b.BeginFill()
	b.FillEdge(0, 1)
	b.FillArc(0, 1)
	if _, err := b.Finish(r, false); err == nil {
		t.Fatal("duplicate arc not rejected")
	}

	// Self-loop.
	b = NewStreamBuilder(2)
	b.CountArc(1)
	b.BeginFill()
	b.FillArc(1, 1)
	if _, err := b.Finish(r, false); err == nil {
		t.Fatal("self-loop not rejected")
	}

	// Undercounted node: fill exceeds count panics at FillArc; an
	// underfilled node must be caught at Finish.
	b = NewStreamBuilder(3)
	b.CountArcs(0, 2)
	b.CountArc(1)
	b.CountArc(2)
	b.BeginFill()
	b.FillArc(0, 1)
	b.FillArc(1, 0)
	b.FillArc(2, 0)
	if _, err := b.Finish(r, false); err == nil {
		t.Fatal("underfilled node not rejected")
	}
}

func TestBuilderReserve(t *testing.T) {
	b := NewBuilder(100)
	b.Reserve(300)
	s := rng.New(7)
	for i := 0; i < 300; i++ {
		b.AddEdge(int32(s.Intn(100)), int32(s.Intn(100)))
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChungLuGenerator(t *testing.T) {
	g := ChungLu(500, 2.5, 10, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() == 0 || g.M() > 500*10/2 {
		t.Fatalf("unexpected edge count %d", g.M())
	}
	// Deterministic in seed.
	h := ChungLu(500, 2.5, 10, 3)
	if h.M() != g.M() {
		t.Fatal("ChungLu not deterministic")
	}
	// Heavy tail: max degree well above the average.
	avg := float64(2*g.M()) / float64(g.N())
	if float64(g.MaxDegree()) < 3*avg {
		t.Fatalf("max degree %d not heavy-tailed vs avg %.1f", g.MaxDegree(), avg)
	}
	// Streaming emitter matches the builder path's input stream.
	count := 0
	ChungLuEdges(500, 2.5, 10, 3, func(u, v int32) {
		count++
		if u < 0 || v < 0 || u >= 500 || v >= 500 || u == v {
			t.Fatalf("bad emitted edge (%d,%d)", u, v)
		}
	})
	if count < g.M() {
		t.Fatalf("emitter produced %d candidates < %d kept edges", count, g.M())
	}
}
