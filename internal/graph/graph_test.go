package graph

import (
	"testing"
	"testing/quick"

	"parcolor/internal/rng"
)

func TestBuilderDeduplicatesAndSorts(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(2, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 0)
	b.AddEdge(0, 3)
	b.AddEdge(2, 2) // self-loop dropped
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M=%d want 2", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(0, 3) || g.HasEdge(0, 1) {
		t.Fatal("edge membership wrong")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := Star(5)
	if g.Degree(0) != 4 {
		t.Fatalf("center degree %d", g.Degree(0))
	}
	for v := int32(1); v < 5; v++ {
		if g.Degree(v) != 1 || g.Neighbors(v)[0] != 0 {
			t.Fatalf("leaf %d wrong adjacency", v)
		}
	}
	if g.MaxDegree() != 4 {
		t.Fatal("MaxDegree wrong")
	}
}

func TestCompleteAndCycleCounts(t *testing.T) {
	if g := Complete(7); g.M() != 21 || g.MaxDegree() != 6 {
		t.Fatalf("K7 m=%d Δ=%d", g.M(), g.MaxDegree())
	}
	if g := Cycle(9); g.M() != 9 || g.MaxDegree() != 2 {
		t.Fatalf("C9 m=%d Δ=%d", g.M(), g.MaxDegree())
	}
	if g := Path(5); g.M() != 4 {
		t.Fatalf("P5 m=%d", g.M())
	}
	if g := Grid(3, 4); g.M() != 3*3+2*4 {
		t.Fatalf("grid m=%d", g.M())
	}
}

func TestGeneratorsValidate(t *testing.T) {
	gens := map[string]*Graph{
		"gnp":         Gnp(200, 0.05, 1),
		"gnp-dense":   Gnp(60, 0.5, 2),
		"regular":     RandomRegular(100, 6, 3),
		"powerlaw":    PowerLaw(150, 3, 4),
		"cliques":     CliquesPlusMatching(4, 10, 5),
		"noisy":       NoisyClique(20, 10, 0.1, 6),
		"bipartite":   Bipartite(20, 30, 0.2, 7),
		"caterpillar": Caterpillar(10, 3),
		"mixed":       Mixed(120, 8),
	}
	for name, g := range gens {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.N() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
}

func TestGnpDeterministicAndDensityReasonable(t *testing.T) {
	a := Gnp(300, 0.1, 42)
	b := Gnp(300, 0.1, 42)
	if a.M() != b.M() {
		t.Fatal("same seed different edge count")
	}
	expected := 0.1 * 300 * 299 / 2
	if float64(a.M()) < expected*0.7 || float64(a.M()) > expected*1.3 {
		t.Fatalf("Gnp density off: m=%d expected≈%.0f", a.M(), expected)
	}
	if Gnp(300, 0.1, 43).M() == a.M() && Gnp(300, 0.1, 44).M() == a.M() {
		t.Fatal("suspiciously seed-independent")
	}
}

func TestGnpEdgeCases(t *testing.T) {
	if g := Gnp(10, 0, 1); g.M() != 0 {
		t.Fatal("p=0 should be empty")
	}
	if g := Gnp(10, 1, 1); g.M() != 45 {
		t.Fatal("p=1 should be complete")
	}
	if g := Gnp(1, 0.5, 1); g.N() != 1 || g.M() != 0 {
		t.Fatal("n=1 wrong")
	}
}

// TestGnpEdgesMatchesPairFromIndex pins GnpEdges' streaming row cursor
// against the O(n)-per-call pairFromIndex reference: replaying the same
// geometric skip sequence through both mappings must yield the identical
// edge stream. This is the differential that let the cursor replace the
// per-edge reference lookup (which made generation O(n·m) at n=10^6).
func TestGnpEdgesMatchesPairFromIndex(t *testing.T) {
	for _, n := range []int{2, 3, 9, 57, 400} {
		for _, p := range []float64{0.01, 0.2, 0.7, 0.97} {
			const seed = 7
			s := rng.New(rng.Hash2(seed, 0xE5D0))
			total := int64(n) * int64(n-1) / 2
			pos := int64(-1)
			var want [][2]int32
			for {
				u01 := s.Float64()
				if u01 >= 1 {
					u01 = 0.9999999999999999
				}
				pos += 1 + int64(logRatio(u01, p))
				if pos >= total {
					break
				}
				u, v := pairFromIndex(pos, n)
				want = append(want, [2]int32{u, v})
			}
			var got [][2]int32
			GnpEdges(n, p, seed, func(u, v int32) { got = append(got, [2]int32{u, v}) })
			if len(got) != len(want) {
				t.Fatalf("n=%d p=%g: %d edges streamed, reference has %d", n, p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%g: edge %d is %v, reference %v", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPairFromIndexBijective(t *testing.T) {
	n := 9
	seen := map[[2]int32]bool{}
	total := int64(n * (n - 1) / 2)
	for pos := int64(0); pos < total; pos++ {
		u, v := pairFromIndex(pos, n)
		if u >= v || v >= int32(n) {
			t.Fatalf("bad pair (%d,%d)", u, v)
		}
		key := [2]int32{u, v}
		if seen[key] {
			t.Fatalf("duplicate pair (%d,%d)", u, v)
		}
		seen[key] = true
	}
}

func TestRandomRegularDegreeBound(t *testing.T) {
	d := 8
	g := RandomRegular(200, d, 9)
	if g.MaxDegree() > d {
		t.Fatalf("max degree %d exceeds %d", g.MaxDegree(), d)
	}
	// Average degree should be close to d (collisions are rare).
	avg := float64(2*g.M()) / float64(g.N())
	if avg < float64(d)-1.5 {
		t.Fatalf("average degree %.2f too low for d=%d", avg, d)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(6)
	sub, orig := InducedSubgraph(g, []int32{5, 1, 3})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3 wrong: n=%d m=%d", sub.N(), sub.M())
	}
	want := []int32{1, 3, 5}
	for i, v := range orig {
		if v != want[i] {
			t.Fatalf("origOf=%v", orig)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphProperty(t *testing.T) {
	g := Gnp(60, 0.15, 5)
	f := func(mask uint64) bool {
		var keep []int32
		for v := int32(0); v < 60; v++ {
			if mask>>(uint(v)%64)&1 == 1 || v%7 == int32(mask%7) {
				keep = append(keep, v)
			}
		}
		sub, orig := InducedSubgraph(g, keep)
		if sub.N() != len(orig) {
			return false
		}
		// every sub edge must exist in g; every g edge within keep must be in sub
		for u := int32(0); u < int32(sub.N()); u++ {
			for _, v := range sub.Neighbors(u) {
				if !g.HasEdge(orig[u], orig[v]) {
					return false
				}
			}
		}
		for i, ou := range orig {
			for j := i + 1; j < len(orig); j++ {
				if g.HasEdge(ou, orig[j]) != sub.HasEdge(int32(i), int32(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLineGraphOfTriangle(t *testing.T) {
	lg, edges := LineGraph(Complete(3))
	if lg.N() != 3 || lg.M() != 3 {
		t.Fatalf("L(K3) n=%d m=%d", lg.N(), lg.M())
	}
	if len(edges) != 3 {
		t.Fatal("edge list wrong")
	}
}

func TestLineGraphOfStar(t *testing.T) {
	// L(K_{1,4}) = K4.
	lg, _ := LineGraph(Star(5))
	if lg.N() != 4 || lg.M() != 6 {
		t.Fatalf("L(star) n=%d m=%d", lg.N(), lg.M())
	}
}

func TestLineGraphDegreeIdentity(t *testing.T) {
	g := Gnp(40, 0.2, 11)
	lg, edges := LineGraph(g)
	for i, e := range edges {
		want := g.Degree(e[0]) + g.Degree(e[1]) - 2
		if lg.Degree(int32(i)) != want {
			t.Fatalf("edge %v line-degree %d want %d", e, lg.Degree(int32(i)), want)
		}
	}
}

func TestBallBounded(t *testing.T) {
	g := Path(10)
	scratch := make([]int32, g.N())
	for i := range scratch {
		scratch[i] = -1
	}
	ball, ok := BallBounded(g, 5, 2, 0, nil, scratch)
	if !ok || len(ball) != 4 {
		t.Fatalf("ball=%v ok=%v", ball, ok)
	}
	// scratch must be restored
	for i, s := range scratch {
		if s != -1 {
			t.Fatalf("scratch[%d]=%d not restored", i, s)
		}
	}
	_, ok = BallBounded(g, 5, 3, 2, nil, scratch)
	if ok {
		t.Fatal("expected overflow")
	}
	for i, s := range scratch {
		if s != -1 {
			t.Fatalf("scratch[%d]=%d not restored after overflow", i, s)
		}
	}
}

func TestPowerGraph(t *testing.T) {
	g := Path(6)
	p2, err := PowerGraph(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// In P6^2, node 2 is adjacent to 0,1,3,4.
	if p2.Degree(2) != 4 {
		t.Fatalf("P6^2 degree(2)=%d", p2.Degree(2))
	}
	if !p2.HasEdge(0, 2) || p2.HasEdge(0, 3) {
		t.Fatal("power edges wrong")
	}
	pn, err := PowerGraph(g, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pn.M() != 15 {
		t.Fatalf("P6^10 should be complete, m=%d", pn.M())
	}
	if _, err := PowerGraph(Complete(10), 2, 3); err == nil {
		t.Fatal("expected ball-size error")
	}
}

func TestComponents(t *testing.T) {
	g := DisjointUnion() // empty
	if g.N() != 0 {
		t.Fatal("empty union")
	}
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	g = b.Build()
	comp, sizes := Components(g)
	if len(sizes) != 4 { // {0,1,2}, {3}, {4,5}, {6}
		t.Fatalf("components=%d", len(sizes))
	}
	if comp[0] != comp[2] || comp[4] != comp[5] || comp[0] == comp[4] || comp[3] == comp[6] {
		t.Fatalf("labels wrong: %v", comp)
	}
	total := int32(0)
	for _, s := range sizes {
		total += s
	}
	if total != 7 {
		t.Fatal("sizes don't sum to n")
	}
}

func TestCountEdgesAmong(t *testing.T) {
	g := Complete(5)
	if c := CountEdgesAmong(g, []int32{0, 1, 2}); c != 3 {
		t.Fatalf("triangle count %d", c)
	}
	if c := CountEdgesAmong(g, []int32{2}); c != 0 {
		t.Fatalf("singleton count %d", c)
	}
	if c := CountEdgesAmong(Cycle(6), []int32{0, 2, 4}); c != 0 {
		t.Fatalf("independent set count %d", c)
	}
}

func TestDisjointUnionBridges(t *testing.T) {
	g := DisjointUnion(Complete(3), Complete(3))
	if g.N() != 6 {
		t.Fatal("union size")
	}
	if g.M() != 7 { // 3+3 clique edges + 1 bridge
		t.Fatalf("m=%d want 7", g.M())
	}
	_, sizes := Components(g)
	if len(sizes) != 1 {
		t.Fatal("bridge should connect blocks")
	}
}

func TestNamedGenerators(t *testing.T) {
	for _, name := range []string{"gnp-sparse", "gnp-dense", "regular", "powerlaw", "cliques", "mixed", "caterpillar", "cycle", "complete"} {
		g, err := Named(name, 64, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := Named("nope", 10, 1); err == nil {
		t.Fatal("expected error for unknown generator")
	}
}

func TestFromAdjacencyCompletesSymmetry(t *testing.T) {
	g := FromAdjacency([][]int32{{1, 2}, {}, {}})
	if g.M() != 2 || !g.HasEdge(1, 0) {
		t.Fatal("symmetry not completed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	edges := Gnp(2000, 0.01, 1).Edges(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(2000)
		for _, e := range edges {
			bld.AddEdge(e[0], e[1])
		}
		_ = bld.Build()
	}
}

func BenchmarkPowerGraph(b *testing.B) {
	g := RandomRegular(500, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PowerGraph(g, 4, 0); err != nil {
			b.Fatal(err)
		}
	}
}
