package graph

import (
	"fmt"

	"parcolor/internal/par"
)

// This file implements the degree-sorted sharded relabeling layer: a
// permutation of the vertex space that places high-degree vertices first
// (stable within equal degrees, so regular graphs relabel to the
// identity), plus shard boundaries cutting the permuted id space into
// runs whose CSR adjacency storage fits a cache budget. The permuted
// graph is a plain Graph — every algorithm runs on it unchanged — and the
// inverse permutation maps any per-node result back to original ids
// exactly (MapBack), so relabeling is a pure layout optimization:
// hub-adjacent traversals touch one dense shard instead of striding the
// whole adjacency array.

// DefaultShardAdjEntries is the default per-shard adjacency budget:
// 64Ki int32 entries = 256 KiB, sized for a typical L2 so one shard's
// adjacency walks stay cache-resident.
const DefaultShardAdjEntries = 64 << 10

// Relabeling is a vertex bijection with shard boundaries. NewOf and OldOf
// are inverse permutations: NewOf[old] = new, OldOf[new] = old.
type Relabeling struct {
	NewOf []int32
	OldOf []int32
	// ShardOffsets cuts the new id space: shard s is the half-open range
	// [ShardOffsets[s], ShardOffsets[s+1]) of new ids. len = NumShards+1.
	ShardOffsets []int32
}

// DegreeSorted returns the degree-descending stable relabeling of g with
// the default shard budget. Stability means vertices of equal degree keep
// their relative id order — in particular, a regular graph's relabeling
// is the identity permutation.
func DegreeSorted(g *Graph) *Relabeling {
	return DegreeSortedSharded(g, DefaultShardAdjEntries)
}

// DegreeSortedSharded is DegreeSorted with an explicit per-shard
// adjacency budget in entries (≤ 0 means DefaultShardAdjEntries). The
// permutation is a counting sort by degree — O(n + Δ), no comparison
// sort — and sharding is one greedy pass packing consecutive permuted
// vertices until the next vertex would push the shard's adjacency volume
// past the budget (a single vertex whose degree exceeds the budget gets a
// shard of its own).
func DegreeSortedSharded(g *Graph, shardAdjEntries int) *Relabeling {
	if shardAdjEntries <= 0 {
		shardAdjEntries = DefaultShardAdjEntries
	}
	n := g.N()
	maxD := g.MaxDegree()
	// Counting sort, descending degree: bucket b collects degree maxD-b.
	counts := make([]int32, maxD+2)
	for v := 0; v < n; v++ {
		counts[maxD-g.Degree(int32(v))+1]++
	}
	for i := 0; i <= maxD; i++ {
		counts[i+1] += counts[i]
	}
	rl := &Relabeling{
		NewOf: make([]int32, n),
		OldOf: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		b := maxD - g.Degree(int32(v))
		i := counts[b]
		counts[b]++
		rl.NewOf[v] = i
		rl.OldOf[i] = int32(v)
	}
	// Greedy shard packing over the permuted order.
	rl.ShardOffsets = append(rl.ShardOffsets, 0)
	vol := 0
	for i := 0; i < n; i++ {
		d := g.Degree(rl.OldOf[i])
		if vol > 0 && vol+d > shardAdjEntries {
			rl.ShardOffsets = append(rl.ShardOffsets, int32(i))
			vol = 0
		}
		vol += d
	}
	rl.ShardOffsets = append(rl.ShardOffsets, int32(n))
	return rl
}

// NumShards returns the number of shards.
func (rl *Relabeling) NumShards() int { return len(rl.ShardOffsets) - 1 }

// Shard returns shard s's half-open range of new ids.
func (rl *Relabeling) Shard(s int) (lo, hi int32) {
	return rl.ShardOffsets[s], rl.ShardOffsets[s+1]
}

// Apply builds the relabeled graph: new vertex i is old vertex OldOf[i],
// with neighbors mapped through NewOf. Construction is streaming (exact
// counting pass, direct fill into the output CSR) with per-list sorts on
// r's workers; peak memory is the output graph.
func (rl *Relabeling) Apply(r *par.Runner, g *Graph) *Graph {
	n := g.N()
	if len(rl.NewOf) != n || len(rl.OldOf) != n {
		panic(fmt.Sprintf("graph: relabeling for %d nodes applied to %d-node graph", len(rl.NewOf), n))
	}
	b := NewStreamBuilder(n)
	for i := 0; i < n; i++ {
		b.CountArcs(int32(i), g.Degree(rl.OldOf[i]))
	}
	b.BeginFill()
	r.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for _, u := range g.Neighbors(rl.OldOf[i]) {
				b.FillArc(int32(i), rl.NewOf[u])
			}
		}
	})
	out, err := b.Finish(r, false)
	if err != nil {
		panic(fmt.Sprintf("graph: relabel apply: %v", err))
	}
	return out
}

// MapBack translates a per-new-id result vector to original ids:
// out[old] = vals[NewOf[old]]. The translation is exact — MapBack after
// MapForward is the identity on every input, which is what lets a solve
// run entirely on the relabeled graph and still report original-id
// results bit-identically.
func (rl *Relabeling) MapBack(vals []int32) []int32 {
	out := make([]int32, len(vals))
	for old, newID := range rl.NewOf {
		out[old] = vals[newID]
	}
	return out
}

// MapForward translates a per-old-id vector to new ids:
// out[new] = vals[OldOf[new]].
func (rl *Relabeling) MapForward(vals []int32) []int32 {
	out := make([]int32, len(vals))
	for newID, old := range rl.OldOf {
		out[newID] = vals[old]
	}
	return out
}

// Validate checks the bijection invariants (each of NewOf/OldOf is the
// other's inverse) and the shard cover (offsets ascending from 0 to n).
// Property tests call this on every generated relabeling.
func (rl *Relabeling) Validate() error {
	n := len(rl.NewOf)
	if len(rl.OldOf) != n {
		return fmt.Errorf("graph: relabeling NewOf/OldOf length mismatch %d vs %d", n, len(rl.OldOf))
	}
	for v := 0; v < n; v++ {
		i := rl.NewOf[v]
		if i < 0 || int(i) >= n {
			return fmt.Errorf("graph: NewOf[%d] = %d out of range", v, i)
		}
		if rl.OldOf[i] != int32(v) {
			return fmt.Errorf("graph: OldOf[NewOf[%d]] = %d, want %d", v, rl.OldOf[i], v)
		}
	}
	if len(rl.ShardOffsets) < 2 || rl.ShardOffsets[0] != 0 || rl.ShardOffsets[len(rl.ShardOffsets)-1] != int32(n) {
		return fmt.Errorf("graph: shard offsets %v do not cover [0,%d)", rl.ShardOffsets, n)
	}
	for s := 1; s < len(rl.ShardOffsets); s++ {
		if rl.ShardOffsets[s] <= rl.ShardOffsets[s-1] && n > 0 {
			return fmt.Errorf("graph: shard %d empty or out of order", s-1)
		}
	}
	return nil
}
