// Package par provides small deterministic parallel-loop primitives built on
// goroutine worker pools.
//
// Go has no parallel-for construct in the standard library; every
// data-parallel phase of this repository (per-node parameter computation,
// PRG seed scoring, MPC machine steps, partition evaluation) is expressed
// through this package so that the degree of parallelism is controlled in
// one place and results never depend on scheduling order.
//
// All functions are deterministic in their observable results: work is
// partitioned into contiguous index chunks, each chunk writes only to its
// own output range, and reductions combine per-chunk partials in index
// order.
package par

import (
	"runtime"
	"sync"
)

// MaxWorkers bounds the number of worker goroutines used by the package.
// The zero value means runtime.GOMAXPROCS(0). It exists so experiments can
// measure goroutine scaling (experiment E10) without plumbing a parameter
// through every call site.
var maxWorkers int

var maxWorkersMu sync.RWMutex

// SetMaxWorkers sets the global worker bound. n <= 0 restores the default
// (GOMAXPROCS). It returns the previous bound (0 meaning default).
func SetMaxWorkers(n int) int {
	maxWorkersMu.Lock()
	defer maxWorkersMu.Unlock()
	prev := maxWorkers
	if n <= 0 {
		maxWorkers = 0
	} else {
		maxWorkers = n
	}
	return prev
}

// Workers reports the number of workers a parallel loop over n items will
// use: min(bound, n), at least 1.
func Workers(n int) int {
	maxWorkersMu.RLock()
	w := maxWorkers
	maxWorkersMu.RUnlock()
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs body(i) for every i in [0, n), distributing contiguous chunks of
// the index space across workers. body must not panic; it may write only to
// data owned by index i (or otherwise non-overlapping per index).
func For(n int, body func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked runs body(lo, hi) over a partition of [0, n) into one
// contiguous half-open chunk per worker. It is the primitive underlying For
// and Reduce; use it directly when per-chunk setup (scratch buffers, local
// accumulators) matters.
func ForChunked(n int, body func(lo, hi int)) {
	ForChunkedWorker(n, func(_, lo, hi int) { body(lo, hi) })
}

// ForChunkedWorker is ForChunked with the worker index exposed: body runs
// with w ∈ [0, Workers(n)) identifying the goroutine's slot, so callers can
// reuse per-worker scratch (size it with Workers(n)). Chunk boundaries are
// the same deterministic partition ForChunked uses.
func ForChunkedWorker(n int, body func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(n)
	if w == 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			if lo < hi {
				body(k, lo, hi)
			}
		}(k, lo, hi)
	}
	wg.Wait()
}

// partialPool recycles the per-call partial vectors of ReduceChunked so a
// hot selection loop performs no steady-state allocation.
var partialPool = sync.Pool{New: func() any {
	s := make([]int64, 0, 128)
	return &s
}}

// ReduceChunked folds body over [0, n) at chunk granularity: body(lo, hi)
// returns the partial for one contiguous chunk, and partials are summed in
// chunk order, so the result equals the sequential sum regardless of worker
// count. It is the chunk-granular counterpart of ReduceInt, letting the
// callee amortize per-chunk setup across its range.
func ReduceChunked(n int, body func(lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	w := Workers(n)
	if w == 1 {
		return body(0, n)
	}
	pp := partialPool.Get().(*[]int64)
	partial := (*pp)[:0]
	for k := 0; k < w; k++ {
		partial = append(partial, 0)
	}
	ForChunkedWorker(n, func(k, lo, hi int) {
		partial[k] = body(lo, hi)
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	*pp = partial
	partialPool.Put(pp)
	return total
}

// ReduceInt folds body over [0, n): each worker accumulates a chunk-local
// int64 starting from zero, and the partials are summed in chunk order, so
// the result equals the sequential sum regardless of worker count.
func ReduceInt(n int, body func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	w := Workers(n)
	partial := make([]int64, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			var acc int64
			for i := lo; i < hi; i++ {
				acc += body(i)
			}
			partial[k] = acc
		}(k, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

// ReduceMin returns the minimum of body(i) over [0, n) together with the
// smallest index attaining it. It is the deterministic argmin used by the
// method of conditional expectations (ties break toward the smaller index,
// independent of worker count). n must be positive.
func ReduceMin(n int, body func(i int) int64) (min int64, argmin int) {
	if n <= 0 {
		panic("par.ReduceMin: n must be positive")
	}
	w := Workers(n)
	mins := make([]int64, w)
	args := make([]int, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			if lo >= hi {
				args[k] = -1
				return
			}
			bestV := body(lo)
			bestI := lo
			for i := lo + 1; i < hi; i++ {
				if v := body(i); v < bestV {
					bestV, bestI = v, i
				}
			}
			mins[k], args[k] = bestV, bestI
		}(k, lo, hi)
	}
	wg.Wait()
	argmin = -1
	for k := 0; k < w; k++ {
		if args[k] < 0 {
			continue
		}
		if argmin == -1 || mins[k] < min {
			min, argmin = mins[k], args[k]
		}
	}
	return min, argmin
}
