// Package par provides small deterministic parallel-loop primitives built on
// goroutine worker pools.
//
// Go has no parallel-for construct in the standard library; every
// data-parallel phase of this repository (per-node parameter computation,
// PRG seed scoring, MPC machine steps, partition evaluation) is expressed
// through this package so that the degree of parallelism is controlled in
// one place and results never depend on scheduling order.
//
// Parallelism is scoped through Runner: an explicit handle bundling a
// worker bound with an optional cancellation context, threaded by value
// through the solve path (parcolor.Solver → deframe/mis/lowdeg/mpc/
// sparsify → condexp/hknt) so that two concurrent solves with different
// budgets never observe each other's bound. The package-level functions
// run on the process-wide default Runner; leaf helpers (graph builders,
// bitset word fills) that have no per-solve budget use them directly.
//
// All functions are deterministic in their observable results: work is
// partitioned into contiguous index chunks, each chunk writes only to its
// own output range, and reductions combine per-chunk partials in index
// order. The worker bound and cancellation never change *what* a completed
// loop computes, only how many goroutines compute it.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the number of worker goroutines used by the *default*
// Runner (the package-level functions and any Runner without an explicit
// bound). The zero value means runtime.GOMAXPROCS(0). Per-solve bounds are
// carried by explicit Runners and never touch this value.
var maxWorkers int

var maxWorkersMu sync.RWMutex

// SetMaxWorkers sets the default worker bound. n <= 0 restores the default
// (GOMAXPROCS). It returns the previous bound (0 meaning default). It
// configures only the process-wide default Runner — an explicit
// NewRunner(w) bound is unaffected — so concurrent solves with their own
// Runners cannot race through it.
func SetMaxWorkers(n int) int {
	maxWorkersMu.Lock()
	defer maxWorkersMu.Unlock()
	prev := maxWorkers
	if n <= 0 {
		maxWorkers = 0
	} else {
		maxWorkers = n
	}
	return prev
}

func defaultBound() int {
	maxWorkersMu.RLock()
	w := maxWorkers
	maxWorkersMu.RUnlock()
	return w
}

// Runner is a scoped parallelism handle: a worker bound plus an optional
// cancellation context. A nil *Runner is valid everywhere and means "the
// process-wide default": GOMAXPROCS workers (or SetMaxWorkers' bound) and
// no cancellation. Runners are immutable after construction and safe for
// concurrent use; two Runners never share mutable state, which is what
// lets concurrent solves honor distinct bounds.
type Runner struct {
	workers int
	ctx     context.Context
}

// NewRunner returns a Runner bounded to at most workers goroutines per
// parallel loop. workers <= 0 means the process default (GOMAXPROCS).
func NewRunner(workers int) *Runner {
	if workers < 0 {
		workers = 0
	}
	return &Runner{workers: workers}
}

// WithContext returns a Runner with the same worker bound whose loops and
// Err observe ctx. The receiver may be nil (default bound). ctx == nil
// clears cancellation.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	nr := &Runner{ctx: ctx}
	if r != nil {
		nr.workers = r.workers
	}
	return nr
}

// Bound reports the configured worker bound (0 = process default).
func (r *Runner) Bound() int {
	if r == nil {
		return 0
	}
	return r.workers
}

// Err reports the runner's cancellation state: the context's error, or nil
// when no context is attached. Long-running loops (seed walks, round
// drivers, recursions) poll it at iteration boundaries and return it
// promptly, leaving no partially-applied state behind.
func (r *Runner) Err() error {
	if r == nil || r.ctx == nil {
		return nil
	}
	return r.ctx.Err()
}

// Context returns the attached context, or context.Background() when none
// is attached (never nil).
func (r *Runner) Context() context.Context {
	if r == nil || r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// Workers reports the number of workers a parallel loop over n items will
// use: min(bound, n), at least 1.
func (r *Runner) Workers(n int) int {
	w := r.Bound()
	if w <= 0 {
		w = defaultBound()
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs body(i) for every i in [0, n), distributing contiguous chunks of
// the index space across the runner's workers. body must not panic; it may
// write only to data owned by index i (or otherwise non-overlapping per
// index).
func (r *Runner) For(n int, body func(i int)) {
	r.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked runs body(lo, hi) over a partition of [0, n) into one
// contiguous half-open chunk per worker.
func (r *Runner) ForChunked(n int, body func(lo, hi int)) {
	r.ForChunkedWorker(n, func(_, lo, hi int) { body(lo, hi) })
}

// ForChunkedWorker is ForChunked with the worker index exposed: body runs
// with w ∈ [0, Workers(n)) identifying the goroutine's slot, so callers can
// reuse per-worker scratch (size it with Workers(n)). Chunk boundaries are
// the same deterministic partition ForChunked uses.
func (r *Runner) ForChunkedWorker(n int, body func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := r.Workers(n)
	if w == 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			if lo < hi {
				body(k, lo, hi)
			}
		}(k, lo, hi)
	}
	wg.Wait()
}

// Split partitions the runner's worker budget across k concurrent tasks:
// it returns k runners sharing the receiver's context whose bounds sum to
// the receiver's effective bound whenever that bound is at least k (each
// child always gets at least one worker, so oversubscription is capped at
// k-1 extra goroutines when the budget is smaller than the fan-out). The
// sparsify bin scheduler uses it to solve restricted bins concurrently
// without the nested parallel loops overshooting the solve's budget.
// Children are plain Runners — immutable, safe for concurrent use.
func (r *Runner) Split(k int) []*Runner {
	if k < 1 {
		k = 1
	}
	w := r.Bound()
	if w <= 0 {
		w = defaultBound()
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	var ctx context.Context
	if r != nil {
		ctx = r.ctx
	}
	out := make([]*Runner, k)
	base, extra := w/k, w%k
	for i := range out {
		share := base
		if i < extra {
			share++
		}
		if share < 1 {
			share = 1
		}
		out[i] = &Runner{workers: share, ctx: ctx}
	}
	return out
}

// ForRanges runs body over the half-open ranges offsets[i]..offsets[i+1],
// handing each range to a worker as one indivisible work unit — the
// shard-aware counterpart of ForChunked: a degree-sharded instance hands
// whole cache-resident shards to workers instead of arbitrary contiguous
// index splits. Ranges are claimed dynamically (an atomic cursor), so a
// heavy shard does not serialize the light ones behind it; body must
// write only to data owned by its range, which keeps the result
// deterministic under any claim order. Empty ranges are skipped.
func (r *Runner) ForRanges(offsets []int32, body func(lo, hi int)) {
	k := len(offsets) - 1
	if k <= 0 {
		return
	}
	w := r.Workers(k)
	if w == 1 {
		for i := 0; i < k; i++ {
			if offsets[i] < offsets[i+1] {
				body(int(offsets[i]), int(offsets[i+1]))
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				if offsets[i] < offsets[i+1] {
					body(int(offsets[i]), int(offsets[i+1]))
				}
			}
		}()
	}
	wg.Wait()
}

// partialPool recycles the per-call partial vectors of ReduceChunked so a
// hot selection loop performs no steady-state allocation.
var partialPool = sync.Pool{New: func() any {
	s := make([]int64, 0, 128)
	return &s
}}

// ReduceChunked folds body over [0, n) at chunk granularity: body(lo, hi)
// returns the partial for one contiguous chunk, and partials are summed in
// chunk order, so the result equals the sequential sum regardless of worker
// count.
func (r *Runner) ReduceChunked(n int, body func(lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	w := r.Workers(n)
	if w == 1 {
		return body(0, n)
	}
	pp := partialPool.Get().(*[]int64)
	partial := (*pp)[:0]
	for k := 0; k < w; k++ {
		partial = append(partial, 0)
	}
	r.ForChunkedWorker(n, func(k, lo, hi int) {
		partial[k] = body(lo, hi)
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	*pp = partial
	partialPool.Put(pp)
	return total
}

// ReduceInt folds body over [0, n): each worker accumulates a chunk-local
// int64 starting from zero, and the partials are summed in chunk order, so
// the result equals the sequential sum regardless of worker count.
func (r *Runner) ReduceInt(n int, body func(i int) int64) int64 {
	return r.ReduceChunked(n, func(lo, hi int) int64 {
		var acc int64
		for i := lo; i < hi; i++ {
			acc += body(i)
		}
		return acc
	})
}

// ReduceMin returns the minimum of body(i) over [0, n) together with the
// smallest index attaining it. It is the deterministic argmin used by the
// method of conditional expectations (ties break toward the smaller index,
// independent of worker count). n must be positive.
func (r *Runner) ReduceMin(n int, body func(i int) int64) (min int64, argmin int) {
	if n <= 0 {
		panic("par.ReduceMin: n must be positive")
	}
	w := r.Workers(n)
	mins := make([]int64, w)
	args := make([]int, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			if lo >= hi {
				args[k] = -1
				return
			}
			bestV := body(lo)
			bestI := lo
			for i := lo + 1; i < hi; i++ {
				if v := body(i); v < bestV {
					bestV, bestI = v, i
				}
			}
			mins[k], args[k] = bestV, bestI
		}(k, lo, hi)
	}
	wg.Wait()
	argmin = -1
	for k := 0; k < w; k++ {
		if args[k] < 0 {
			continue
		}
		if argmin == -1 || mins[k] < min {
			min, argmin = mins[k], args[k]
		}
	}
	return min, argmin
}

// --- Package-level functions: the default Runner ---------------------------

// Workers reports the number of workers a default-Runner loop over n items
// will use.
func Workers(n int) int { return (*Runner)(nil).Workers(n) }

// For is Runner.For on the default Runner.
func For(n int, body func(i int)) { (*Runner)(nil).For(n, body) }

// ForChunked is Runner.ForChunked on the default Runner.
func ForChunked(n int, body func(lo, hi int)) { (*Runner)(nil).ForChunked(n, body) }

// ForChunkedWorker is Runner.ForChunkedWorker on the default Runner.
func ForChunkedWorker(n int, body func(w, lo, hi int)) { (*Runner)(nil).ForChunkedWorker(n, body) }

// ReduceChunked is Runner.ReduceChunked on the default Runner.
func ReduceChunked(n int, body func(lo, hi int) int64) int64 {
	return (*Runner)(nil).ReduceChunked(n, body)
}

// ReduceInt is Runner.ReduceInt on the default Runner.
func ReduceInt(n int, body func(i int) int64) int64 { return (*Runner)(nil).ReduceInt(n, body) }

// ReduceMin is Runner.ReduceMin on the default Runner.
func ReduceMin(n int, body func(i int) int64) (min int64, argmin int) {
	return (*Runner)(nil).ReduceMin(n, body)
}
