package par

import (
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForChunkedPartition(t *testing.T) {
	n := 1003
	seen := make([]int32, n)
	ForChunked(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d covered %d times", i, s)
		}
	}
}

func TestReduceIntMatchesSequential(t *testing.T) {
	f := func(vals []int16) bool {
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		got := ReduceInt(len(vals), func(i int) int64 { return int64(vals[i]) })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceMinFindsSmallestIndexTie(t *testing.T) {
	vals := []int64{5, 3, 9, 3, 3, 8}
	min, arg := ReduceMin(len(vals), func(i int) int64 { return vals[i] })
	if min != 3 || arg != 1 {
		t.Fatalf("got (%d,%d), want (3,1)", min, arg)
	}
}

func TestReduceMinProperty(t *testing.T) {
	f := func(vals []int32) bool {
		if len(vals) == 0 {
			return true
		}
		min, arg := ReduceMin(len(vals), func(i int) int64 { return int64(vals[i]) })
		// arg must attain min, and nothing earlier may be <= min-1 or equal.
		if int64(vals[arg]) != min {
			return false
		}
		for i, v := range vals {
			if int64(v) < min {
				return false
			}
			if int64(v) == min && i < arg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetMaxWorkersRestoresAndBounds(t *testing.T) {
	prev := SetMaxWorkers(3)
	defer SetMaxWorkers(prev)
	if w := Workers(100); w != 3 {
		t.Fatalf("Workers(100)=%d want 3", w)
	}
	if w := Workers(2); w != 2 {
		t.Fatalf("Workers(2)=%d want 2", w)
	}
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0)=%d want 1", w)
	}
	SetMaxWorkers(0)
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1)=%d want 1", w)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	vals := make([]int64, 999)
	for i := range vals {
		vals[i] = int64((i*2654435761 + 17) % 1000)
	}
	ref := ReduceInt(len(vals), func(i int) int64 { return vals[i] })
	refMin, refArg := ReduceMin(len(vals), func(i int) int64 { return vals[i] })
	for _, w := range []int{1, 2, 3, 5, 8} {
		prev := SetMaxWorkers(w)
		sum := ReduceInt(len(vals), func(i int) int64 { return vals[i] })
		min, arg := ReduceMin(len(vals), func(i int) int64 { return vals[i] })
		SetMaxWorkers(prev)
		if sum != ref || min != refMin || arg != refArg {
			t.Fatalf("workers=%d: results differ", w)
		}
	}
}

func TestForChunkedWorkerPartitionAndSlots(t *testing.T) {
	n := 777
	w := Workers(n)
	seen := make([]int32, n)
	slotHits := make([]int32, w)
	ForChunkedWorker(n, func(wk, lo, hi int) {
		if wk < 0 || wk >= w {
			t.Errorf("worker slot %d out of [0,%d)", wk, w)
		}
		atomic.AddInt32(&slotHits[wk], 1)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d covered %d times", i, s)
		}
	}
	for wk, h := range slotHits {
		if h > 1 {
			t.Fatalf("worker slot %d used %d times", wk, h)
		}
	}
}

func TestForChunkedWorkerMatchesForChunkedBounds(t *testing.T) {
	for _, n := range []int{1, 2, 17, 1000} {
		var a, b [][2]int
		var mu sync.Mutex
		ForChunked(n, func(lo, hi int) {
			mu.Lock()
			a = append(a, [2]int{lo, hi})
			mu.Unlock()
		})
		ForChunkedWorker(n, func(_, lo, hi int) {
			mu.Lock()
			b = append(b, [2]int{lo, hi})
			mu.Unlock()
		})
		sortChunks := func(c [][2]int) {
			sort.Slice(c, func(i, j int) bool { return c[i][0] < c[j][0] })
		}
		sortChunks(a)
		sortChunks(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("n=%d: chunk bounds differ: %v vs %v", n, a, b)
		}
	}
}

func TestReduceChunkedMatchesSequential(t *testing.T) {
	f := func(vals []int16) bool {
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		got := ReduceChunked(len(vals), func(lo, hi int) int64 {
			var acc int64
			for i := lo; i < hi; i++ {
				acc += int64(vals[i])
			}
			return acc
		})
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceChunkedDeterministicAcrossWorkerCounts(t *testing.T) {
	vals := make([]int64, 1234)
	for i := range vals {
		vals[i] = int64((i*40503 + 7) % 911)
	}
	body := func(lo, hi int) int64 {
		var acc int64
		for i := lo; i < hi; i++ {
			acc += vals[i]
		}
		return acc
	}
	ref := ReduceChunked(len(vals), body)
	for _, w := range []int{1, 2, 3, 7, 16} {
		prev := SetMaxWorkers(w)
		got := ReduceChunked(len(vals), body)
		SetMaxWorkers(prev)
		if got != ref {
			t.Fatalf("workers=%d: %d != %d", w, got, ref)
		}
	}
}

func BenchmarkReduceChunked(b *testing.B) {
	x := make([]int64, 1<<14)
	for i := range x {
		x[i] = int64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ReduceChunked(len(x), func(lo, hi int) int64 {
			var acc int64
			for j := lo; j < hi; j++ {
				acc += x[j]
			}
			return acc
		})
	}
}

func BenchmarkForOverhead(b *testing.B) {
	x := make([]int64, 1<<14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(len(x), func(j int) { x[j]++ })
	}
}
