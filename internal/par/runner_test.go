package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunnerWorkersBound checks the min(bound, n) ≥ 1 arithmetic for
// explicit runners, independent of the process default.
func TestRunnerWorkersBound(t *testing.T) {
	cases := []struct {
		bound, n, want int
	}{
		{1, 100, 1},
		{3, 100, 3},
		{3, 2, 2},
		{8, 0, 1},
		{0, 1, 1},
	}
	for _, c := range cases {
		r := NewRunner(c.bound)
		if got := r.Workers(c.n); got != c.want {
			t.Errorf("NewRunner(%d).Workers(%d) = %d, want %d", c.bound, c.n, got, c.want)
		}
	}
	if got := NewRunner(-5).Bound(); got != 0 {
		t.Errorf("negative bound not normalized: Bound() = %d", got)
	}
}

// TestConcurrentRunnersHonorOwnBounds is the regression test for the
// SetMaxWorkers global-mutation race: two runners with different bounds
// running concurrently must each cap their own observed parallelism, with
// no cross-contamination. Run under -race this also proves the handles
// share no mutable state.
func TestConcurrentRunnersHonorOwnBounds(t *testing.T) {
	const iters = 50
	probe := func(r *Runner, bound int) {
		var inflight, peak atomic.Int64
		for it := 0; it < iters; it++ {
			r.ForChunkedWorker(256, func(_, lo, hi int) {
				cur := inflight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				s := 0
				for i := lo; i < hi; i++ {
					s += i
				}
				_ = s
				inflight.Add(-1)
			})
		}
		if p := peak.Load(); p > int64(bound) {
			t.Errorf("runner with bound %d observed %d concurrent workers", bound, p)
		}
	}
	var wg sync.WaitGroup
	for _, bound := range []int{1, 2, 4} {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			probe(NewRunner(b), b)
		}(bound)
	}
	wg.Wait()
}

// TestRunnerDeterministicAcrossBounds pins reductions to the sequential
// result for every bound.
func TestRunnerDeterministicAcrossBounds(t *testing.T) {
	n := 1000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i*2654435761)%1000) - 500
	}
	var wantSum int64
	wantMin, wantArg := vals[0], 0
	for i, v := range vals {
		wantSum += v
		if v < wantMin {
			wantMin, wantArg = v, i
		}
	}
	for _, bound := range []int{1, 2, 3, 7, 64} {
		r := NewRunner(bound)
		if got := r.ReduceInt(n, func(i int) int64 { return vals[i] }); got != wantSum {
			t.Errorf("bound %d: ReduceInt = %d, want %d", bound, got, wantSum)
		}
		if got := r.ReduceChunked(n, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		}); got != wantSum {
			t.Errorf("bound %d: ReduceChunked = %d, want %d", bound, got, wantSum)
		}
		gotMin, gotArg := r.ReduceMin(n, func(i int) int64 { return vals[i] })
		if gotMin != wantMin || gotArg != wantArg {
			t.Errorf("bound %d: ReduceMin = (%d, %d), want (%d, %d)", bound, gotMin, gotArg, wantMin, wantArg)
		}
	}
}

// TestRunnerContext checks Err/Context plumbing, including the nil-runner
// and nil-context defaults.
func TestRunnerContext(t *testing.T) {
	var nilR *Runner
	if err := nilR.Err(); err != nil {
		t.Fatalf("nil runner Err = %v", err)
	}
	if nilR.Context() == nil {
		t.Fatal("nil runner Context is nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRunner(2).WithContext(ctx)
	if r.Err() != nil {
		t.Fatalf("live context Err = %v", r.Err())
	}
	if r.Bound() != 2 {
		t.Fatalf("WithContext dropped the bound: %d", r.Bound())
	}
	cancel()
	if r.Err() != context.Canceled {
		t.Fatalf("cancelled Err = %v, want context.Canceled", r.Err())
	}
	// Deriving from nil keeps the default bound.
	r2 := nilR.WithContext(ctx)
	if r2.Bound() != 0 || r2.Err() != context.Canceled {
		t.Fatalf("nil.WithContext: bound %d err %v", r2.Bound(), r2.Err())
	}
}
