package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunnerWorkersBound checks the min(bound, n) ≥ 1 arithmetic for
// explicit runners, independent of the process default.
func TestRunnerWorkersBound(t *testing.T) {
	cases := []struct {
		bound, n, want int
	}{
		{1, 100, 1},
		{3, 100, 3},
		{3, 2, 2},
		{8, 0, 1},
		{0, 1, 1},
	}
	for _, c := range cases {
		r := NewRunner(c.bound)
		if got := r.Workers(c.n); got != c.want {
			t.Errorf("NewRunner(%d).Workers(%d) = %d, want %d", c.bound, c.n, got, c.want)
		}
	}
	if got := NewRunner(-5).Bound(); got != 0 {
		t.Errorf("negative bound not normalized: Bound() = %d", got)
	}
}

// TestConcurrentRunnersHonorOwnBounds is the regression test for the
// SetMaxWorkers global-mutation race: two runners with different bounds
// running concurrently must each cap their own observed parallelism, with
// no cross-contamination. Run under -race this also proves the handles
// share no mutable state.
func TestConcurrentRunnersHonorOwnBounds(t *testing.T) {
	const iters = 50
	probe := func(r *Runner, bound int) {
		var inflight, peak atomic.Int64
		for it := 0; it < iters; it++ {
			r.ForChunkedWorker(256, func(_, lo, hi int) {
				cur := inflight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				s := 0
				for i := lo; i < hi; i++ {
					s += i
				}
				_ = s
				inflight.Add(-1)
			})
		}
		if p := peak.Load(); p > int64(bound) {
			t.Errorf("runner with bound %d observed %d concurrent workers", bound, p)
		}
	}
	var wg sync.WaitGroup
	for _, bound := range []int{1, 2, 4} {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			probe(NewRunner(b), b)
		}(bound)
	}
	wg.Wait()
}

// TestRunnerDeterministicAcrossBounds pins reductions to the sequential
// result for every bound.
func TestRunnerDeterministicAcrossBounds(t *testing.T) {
	n := 1000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i*2654435761)%1000) - 500
	}
	var wantSum int64
	wantMin, wantArg := vals[0], 0
	for i, v := range vals {
		wantSum += v
		if v < wantMin {
			wantMin, wantArg = v, i
		}
	}
	for _, bound := range []int{1, 2, 3, 7, 64} {
		r := NewRunner(bound)
		if got := r.ReduceInt(n, func(i int) int64 { return vals[i] }); got != wantSum {
			t.Errorf("bound %d: ReduceInt = %d, want %d", bound, got, wantSum)
		}
		if got := r.ReduceChunked(n, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		}); got != wantSum {
			t.Errorf("bound %d: ReduceChunked = %d, want %d", bound, got, wantSum)
		}
		gotMin, gotArg := r.ReduceMin(n, func(i int) int64 { return vals[i] })
		if gotMin != wantMin || gotArg != wantArg {
			t.Errorf("bound %d: ReduceMin = (%d, %d), want (%d, %d)", bound, gotMin, gotArg, wantMin, wantArg)
		}
	}
}

// TestRunnerContext checks Err/Context plumbing, including the nil-runner
// and nil-context defaults.
func TestRunnerContext(t *testing.T) {
	var nilR *Runner
	if err := nilR.Err(); err != nil {
		t.Fatalf("nil runner Err = %v", err)
	}
	if nilR.Context() == nil {
		t.Fatal("nil runner Context is nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRunner(2).WithContext(ctx)
	if r.Err() != nil {
		t.Fatalf("live context Err = %v", r.Err())
	}
	if r.Bound() != 2 {
		t.Fatalf("WithContext dropped the bound: %d", r.Bound())
	}
	cancel()
	if r.Err() != context.Canceled {
		t.Fatalf("cancelled Err = %v, want context.Canceled", r.Err())
	}
	// Deriving from nil keeps the default bound.
	r2 := nilR.WithContext(ctx)
	if r2.Bound() != 0 || r2.Err() != context.Canceled {
		t.Fatalf("nil.WithContext: bound %d err %v", r2.Bound(), r2.Err())
	}
}

// TestRunnerSplit checks that Split conserves the parent's budget (when it
// is at least the fan-out), floors every child at one worker, and threads
// the parent's context into each child.
func TestRunnerSplit(t *testing.T) {
	cases := []struct {
		bound, k int
		want     []int
	}{
		{8, 3, []int{3, 3, 2}},
		{4, 4, []int{1, 1, 1, 1}},
		{2, 5, []int{1, 1, 1, 1, 1}}, // oversubscribed: floor of 1 each
		{7, 2, []int{4, 3}},
		{1, 1, []int{1}},
	}
	for _, c := range cases {
		kids := NewRunner(c.bound).Split(c.k)
		if len(kids) != len(c.want) {
			t.Fatalf("Split(%d) with bound %d: %d children, want %d", c.k, c.bound, len(kids), len(c.want))
		}
		for i, kid := range kids {
			if kid.Bound() != c.want[i] {
				t.Errorf("bound %d Split(%d)[%d].Bound() = %d, want %d", c.bound, c.k, i, kid.Bound(), c.want[i])
			}
		}
	}
	if kids := NewRunner(6).Split(0); len(kids) != 1 || kids[0].Bound() != 6 {
		t.Errorf("Split(0) should clamp to one child with the full budget")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, kid := range NewRunner(4).WithContext(ctx).Split(3) {
		if kid.Err() != context.Canceled {
			t.Errorf("child %d did not inherit the cancelled context: %v", i, kid.Err())
		}
	}
	// A nil runner splits its default budget without panicking.
	var nilR *Runner
	if kids := nilR.Split(2); len(kids) != 2 {
		t.Errorf("nil runner Split(2) returned %d children", len(kids))
	}
}

// TestRunnerForRanges pins the range executor: every index in every
// half-open range is visited exactly once, empty ranges are skipped, and
// the result is identical across worker bounds (ranges own disjoint data).
func TestRunnerForRanges(t *testing.T) {
	offsets := []int32{0, 5, 5, 17, 40, 41, 100}
	n := int(offsets[len(offsets)-1])
	for _, bound := range []int{1, 2, 4, 16} {
		visits := make([]int32, n)
		var calls atomic.Int64
		NewRunner(bound).ForRanges(offsets, func(lo, hi int) {
			calls.Add(1)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("bound %d: index %d visited %d times", bound, i, v)
			}
		}
		// 6 ranges, one empty (5..5): body must run once per non-empty range.
		if c := calls.Load(); c != 5 {
			t.Errorf("bound %d: body ran %d times, want 5", bound, c)
		}
	}
	// Degenerate offsets are no-ops.
	NewRunner(4).ForRanges(nil, func(lo, hi int) { t.Error("body ran for nil offsets") })
	NewRunner(4).ForRanges([]int32{7}, func(lo, hi int) { t.Error("body ran for single offset") })
}
