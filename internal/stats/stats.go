// Package stats renders the experiment tables: fixed-width text tables
// (the format EXPERIMENTS.md embeds and cmd/mpcbench prints) plus CSV for
// downstream plotting.
package stats

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	ID      string // experiment id, e.g. "E1"
	Title   string
	Note    string // one-line interpretation aid printed under the title
	Columns []string
	Rows    [][]string
}

// New creates a table.
func New(id, title, note string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Note: note, Columns: columns}
}

// Add appends a row, formatting each cell with %v (floats as %.3g).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case float32:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the comma-separated form (no quoting; cells in this
// repository never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown returns a GitHub-flavored markdown table (EXPERIMENTS.md uses
// the plain Render form inside code fences; Markdown is for docs that want
// native tables).
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
