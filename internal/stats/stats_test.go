package stats

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("E9", "Space accounting", "max words vs s", "n", "s", "maxStored", "ratio")
	t.Add(100, 64, 60, 0.9375)
	t.Add(1000, 256, 250, 0.977)
	return t
}

func TestRenderAlignment(t *testing.T) {
	out := sample().Render()
	if !strings.Contains(out, "== E9: Space accounting ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, note, header, separator, 2 rows
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Header and rows must have equal rendered width.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("separator width mismatch:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("X", "t", "", "v")
	tb.Add(0.123456)
	if tb.Rows[0][0] != "0.123" {
		t.Fatalf("float cell %q", tb.Rows[0][0])
	}
	tb.Add(float32(2.0))
	if tb.Rows[1][0] != "2" {
		t.Fatalf("float32 cell %q", tb.Rows[1][0])
	}
}

func TestCSV(t *testing.T) {
	out := sample().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "n,s,maxStored,ratio" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("rows: %v", lines)
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	if !strings.HasPrefix(out, "| n | s | maxStored | ratio |") {
		t.Fatalf("markdown header: %q", out)
	}
	if !strings.Contains(out, "| --- | --- | --- | --- |") {
		t.Fatal("missing separator row")
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("E0", "empty", "", "a")
	out := tb.Render()
	if !strings.Contains(out, "a") {
		t.Fatal("header missing")
	}
}
