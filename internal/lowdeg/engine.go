package lowdeg

import (
	"parcolor/internal/bitset"
	"parcolor/internal/condexp"
	"parcolor/internal/d1lc"
	"parcolor/internal/hknt"
	"parcolor/internal/kernel"
	"parcolor/internal/rng"
)

// This file is the contribution-table seed-selection engine for the
// iterative trial rounds: the lowdeg instantiation of the condexp table
// path. Where the naive oracle re-proposes per seed with fresh n-sized
// candidate and proposal arrays (and re-proposes the winner after
// selection), the engine
//
//   - compacts the round into dense participant-index space once — the
//     live-live edge list, remaining palettes, palette-size reciprocals
//     and score chunk boundaries all flattened over the participants — so
//     every per-seed structure scales with the shrinking live set instead
//     of n,
//   - walks the seed space once, reusing per-worker candidate buffers
//     pooled across seeds (the hknt.Scratch arena pattern) with the
//     per-seed loser state packed into a word-wide bitset.Mask — the
//     elimination pass sets loser bits, each chunk's wins are the
//     seed-invariant candidate count minus a popcount over the chunk's
//     index range (64 participants per word), and the per-seed reset is
//     a word clear instead of a byte-per-participant sweep,
//   - records each participant chunk's −wins contribution straight into
//     the seed's contiguous row of the seed-major condexp.ContribTable,
//     making flat and bitwise selection pure table aggregation, and
//   - caches the best-scoring seed's winner set during the walk (pairs
//     materialized by an and-not of the candidate mask against the loser
//     mask, only when a seed takes the best-seen slot), so the flat
//     winner's proposal is committed without recomputation.
//
// The naive path remains available via Options.NaiveScoring as the oracle
// for differential tests; both paths are bit-identical in selected seed,
// score, certificate, and final coloring.

// trialEngine scores one trial round's seed space incrementally.
type trialEngine struct {
	st      *hknt.State
	parts   []int32
	round   uint64
	nChunks int // score chunks (table rows)

	// edges lists the round's live-live edges once each, as flat pairs of
	// participant indices. Only live nodes can hold a candidate — a
	// non-live neighbor's candidate is always Uncolored — so conflict
	// resolution is one symmetric elimination pass over these edges: half
	// the memory traffic of scanning both endpoints' adjacency, with the
	// same winner set (proposeRound's duplicate test is symmetric). One
	// O(Σdeg) build per round amortized across every seed.
	edges []int32
	// palOff/palFlat is the participants' remaining palettes flattened to
	// one contiguous array: participant i draws from
	// palFlat[palOff[i]:palOff[i+1]] (palettes are fixed for the round).
	palOff  []int32
	palFlat []int32
	// divs[i] is the precomputed reciprocal of participant i's palette
	// size, so the per-(seed, participant) candidate reduction needs no
	// hardware division.
	divs []rng.Divisor
	// bounds[c] is the first participant index of score chunk c — the
	// c*np/k partition computed once instead of per chunk per seed.
	bounds []int32
	// candMask marks participants with a non-empty palette, and candCnt[c]
	// counts them per chunk (a CountRange over the chunk bounds). Every
	// such participant draws a candidate on every seed — the mask and the
	// counts are seed-invariant — so a chunk's wins are candCnt[c] minus a
	// popcount of its loser bits, and the best seed's winner set is one
	// and-not: candMask &^ losers.
	candMask bitset.Mask
	candCnt  []int64

	// cache supplies pooled scratch and table storage: the run's
	// (possibly Solver-owned) Cache, or an ephemeral one scoped to this
	// engine when the run has none.
	cache *Cache

	best condexp.BestSeen
	// bestWins holds the winner proposal of the best seed as (node, color)
	// pairs: materialized only when a seed takes the best-seen slot, so
	// per-seed fills never write a proposal at all.
	bestWins []int32
}

func newTrialEngine(st *hknt.State, parts []int32, round uint64, cache *Cache) *trialEngine {
	if cache == nil {
		cache = NewCache() // per-engine pooling, the pre-Cache behavior
	}
	e := &trialEngine{
		st: st, parts: parts, round: round,
		nChunks: condexp.ScoreChunks(len(parts)),
		cache:   cache,
	}
	g := st.In.G
	np := len(parts)
	// indexOf inverts parts: participant index of each live node.
	indexOf := make([]int32, g.N())
	for i, v := range parts {
		indexOf[v] = int32(i)
	}
	e.palOff = make([]int32, np+1)
	for i, v := range parts {
		e.palOff[i+1] = e.palOff[i] + int32(len(st.Rem[v]))
	}
	e.palFlat = make([]int32, 0, e.palOff[np])
	e.divs = make([]rng.Divisor, np)
	for i, v := range parts {
		for _, u := range g.Neighbors(v) {
			if u > v && st.Live(u) {
				e.edges = append(e.edges, int32(i), indexOf[u])
			}
		}
		e.palFlat = append(e.palFlat, st.Rem[v]...)
		if d := len(st.Rem[v]); d > 0 {
			e.divs[i] = rng.NewDivisor(uint64(d))
		}
	}
	e.bounds = condexp.ChunkBounds(np, e.nChunks)
	e.candMask = bitset.New(np)
	e.candMask.Fill(np, func(i int) bool { return e.palOff[i] < e.palOff[i+1] })
	e.candCnt = make([]int64, e.nChunks)
	for c := 0; c < e.nChunks; c++ {
		e.candCnt[c] = int64(e.candMask.CountRange(int(e.bounds[c]), int(e.bounds[c+1])))
	}
	return e
}

// fill is the condexp.ChunkFiller: run one trial for the seed with pooled
// scratch and record each participant chunk's −wins. The candidate draw
// and conflict resolution match proposeRound exactly — an empty palette
// yields Uncolored, and only live neighbors can collide — so the per-chunk
// sums are the naive scorer's −countWins split over the partition.
func (e *trialEngine) fill(seed uint64, row []int64) {
	ss := e.cache.getScratch(len(e.parts))
	cand, parts := ss.cand, e.parts
	// Pass 1: draw candidates into dense participant-index space.
	for i := range parts {
		plo, phi := e.palOff[i], e.palOff[i+1]
		if plo == phi {
			cand[i] = d1lc.Uncolored
			continue
		}
		h := rng.Hash3(seed, uint64(parts[i]), e.round)
		cand[i] = e.palFlat[plo+int32(e.divs[i].Mod(h))]
	}
	// Pass 2: symmetric elimination over the live edge list — a collision
	// eliminates both endpoints, exactly proposeRound's duplicate rule.
	// Loser state is one bit per participant; setting an already-set bit
	// is idempotent, so no distinct-transition bookkeeping is needed.
	loser := ss.loser
	loser.Reset()
	edges := e.edges
	for k := 0; k < len(edges); k += 2 {
		a, b := edges[k], edges[k+1]
		if ca := cand[a]; ca != d1lc.Uncolored && ca == cand[b] {
			loser.Set(int(a))
			loser.Set(int(b))
		}
	}
	// Each chunk's −wins: seed-invariant candidate count minus a popcount
	// of its loser bits, 64 participants per word, written straight into
	// the seed's in-place table row; the seed's total is the row's
	// unit-stride reduce.
	for c := range row {
		row[c] = -(e.candCnt[c] - int64(loser.CountRange(int(e.bounds[c]), int(e.bounds[c+1]))))
	}
	e.offerBest(seed, kernel.Sum(row), cand, ss)
	e.cache.putScratch(ss)
}

// offerBest offers the seed to the best-seen cache (the flat selection's
// winner), materializing its winner pairs when it takes the slot: winners
// = candidates &^ losers by one word-wide and-not, then a set-bit walk
// collects the (node, color) pairs.
func (e *trialEngine) offerBest(seed uint64, score int64, cand []int32, ss *trialScratch) {
	e.best.Offer(seed, score, func() {
		win := ss.winners
		win.Copy(e.candMask)
		win.AndNot(ss.loser)
		e.bestWins = e.bestWins[:0]
		win.ForEach(func(i int) {
			e.bestWins = append(e.bestWins, e.parts[i], cand[i])
		})
	})
}

// proposalFor returns the chosen seed's proposal: rebuilt from the cached
// winner pairs when the seed matches (always, for flat selection),
// otherwise one fresh re-proposal (bitwise selection may pick a non-argmin
// seed).
func (e *trialEngine) proposalFor(seed uint64) hknt.Proposal {
	if e.best.Matches(seed) {
		p := hknt.NewProposal(e.st.In.G.N())
		for i := 0; i < len(e.bestWins); i += 2 {
			p.SetWin(e.bestWins[i], e.bestWins[i+1])
		}
		return p
	}
	return proposeRound(e.st, e.parts, seed, e.round)
}

// selectSeedTable runs the table path for one round: build the
// contribution table in one parallel pass and aggregate (flat or bitwise).
// The caller fetches the winning proposal via proposalFor only when the
// round makes progress — zero-progress rounds take the greedy fallback.
func (e *trialEngine) selectSeedTable(o Options) (condexp.Result, error) {
	tbl, err := e.cache.tableCache().Build(o.Par, 1<<o.SeedBits, e.nChunks, e.fill)
	if err != nil {
		return condexp.Result{}, err
	}
	var res condexp.Result
	if o.Bitwise {
		res = tbl.SelectSeedBitwise(o.SeedBits)
	} else {
		res = tbl.SelectSeed()
	}
	e.cache.tableCache().Release(tbl)
	return res, nil
}
