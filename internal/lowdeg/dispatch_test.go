package lowdeg

import (
	"context"
	"testing"

	"parcolor/internal/d1lc"
	"parcolor/internal/graph"
	"parcolor/internal/kernel"
)

// TestIterativeBitIdenticalAcrossDispatchPaths requires the iterative
// low-degree derandomizer to produce the identical coloring and the
// identical per-round seed certificates under both kernel dispatch
// paths. Skips when the binary has no AVX2 path.
func TestIterativeBitIdenticalAcrossDispatchPaths(t *testing.T) {
	in := d1lc.DeltaPlus1Palettes(graph.Gnp(150, 0.05, 11))
	solve := func() (*d1lc.Coloring, Stats) {
		col, stats, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 8})
		if err != nil {
			t.Fatal(err)
		}
		return col, stats
	}
	prev := kernel.SetAVX2ForTest(false)
	defer kernel.SetAVX2ForTest(prev)
	colG, statsG := solve()
	if kernel.SetAVX2ForTest(true); !kernel.UsingAVX2() {
		t.Skip("AVX2 path not present in this binary")
	}
	colA, statsA := solve()
	for v := range colG.Colors {
		if colG.Colors[v] != colA.Colors[v] {
			t.Fatalf("colorings diverge at node %d: %d (generic) vs %d (avx2)",
				v, colG.Colors[v], colA.Colors[v])
		}
	}
	if len(statsG.Certificates) != len(statsA.Certificates) {
		t.Fatalf("certificate counts diverge: %d vs %d",
			len(statsG.Certificates), len(statsA.Certificates))
	}
	for i := range statsG.Certificates {
		if statsG.Certificates[i] != statsA.Certificates[i] {
			t.Fatalf("round %d certificate diverges: %+v vs %+v",
				i, statsG.Certificates[i], statsA.Certificates[i])
		}
	}
}
