package lowdeg

import (
	"testing"

	"parcolor/internal/condexp"
	"parcolor/internal/d1lc"
	"parcolor/internal/graph"
	"parcolor/internal/hknt"
	"parcolor/internal/par"
)

// TestTrialEngineSeedMajorMatchesChunkMajorOracle pins the trial round
// engine's seed-major table bit-identical to the retained chunk-major
// oracle (condexp.BuildChunkMajorOracle over the engine's own fill):
// cells transpose one-for-one, totals agree in seed order, and both
// selection strategies match — across workers 1, 4 and the process
// default (run under -race in CI), over several rounds so the live set
// and palettes shrink between tables.
func TestTrialEngineSeedMajorMatchesChunkMajorOracle(t *testing.T) {
	const seedBits = 6
	in := d1lc.RandomPalettes(graph.Gnp(120, 0.06, 3), 2, 60, 7)
	st := hknt.NewState(in)
	numSeeds := 1 << seedBits

	for round := uint64(0); round < 3; round++ {
		parts := st.LiveNodes(nil)
		if len(parts) == 0 {
			break
		}
		oracleEng := newTrialEngine(st, parts, round, nil)
		oc, ot := condexp.BuildChunkMajorOracle(numSeeds, oracleEng.nChunks, oracleEng.fill)

		for _, w := range []int{1, 4, 0} {
			eng := newTrialEngine(st, parts, round, nil)
			tbl, err := condexp.BuildTable(par.NewRunner(w), numSeeds, eng.nChunks, eng.fill)
			if err != nil {
				t.Fatal(err)
			}
			if err := tbl.VerifyAgainstChunkMajorOracle(oc, ot, seedBits); err != nil {
				t.Fatalf("round=%d w=%d: %v", round, w, err)
			}
		}

		// Advance the state with the selected proposal so later rounds
		// exercise shrunken live sets and thinner palettes.
		eng := newTrialEngine(st, parts, round, nil)
		sel, err := eng.selectSeedTable(Options{SeedBits: seedBits})
		if err != nil {
			t.Fatal(err)
		}
		if sel.Score == 0 {
			break
		}
		st.Apply(eng.proposalFor(sel.Seed))
	}
}
