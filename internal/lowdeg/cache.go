package lowdeg

import (
	"sync"

	"parcolor/internal/bitset"
	"parcolor/internal/condexp"
	"parcolor/internal/d1lc"
	"parcolor/internal/hknt"
)

// Cache holds the iterative solver's reusable allocations across rounds —
// and, when owned by a long-lived Solver, across whole runs: contribution
// tables and the per-worker trial scratch (candidate buffers, loser/winner
// masks). sync.Pool-backed and safe for concurrent runs. A nil *Cache is
// valid and means "per-round pooling only", the pre-Cache behavior.
type Cache struct {
	tables  condexp.TableCache
	scratch sync.Pool // of *trialScratch
	states  hknt.StatePool
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{} }

func (c *Cache) tableCache() *condexp.TableCache {
	if c == nil {
		return nil
	}
	return &c.tables
}

// getState returns a run state, recycling pooled backing arrays when the
// cache is live.
func (c *Cache) getState(in *d1lc.Instance) *hknt.State {
	if c == nil {
		return hknt.NewState(in)
	}
	return c.states.Get(in)
}

// putState recycles a run state's backing arrays (the coloring, which the
// caller returned, is detached). No-op on a nil cache.
func (c *Cache) putState(st *hknt.State) {
	if c != nil {
		c.states.Put(st)
	}
}

// getScratch checks a worker scratch out of the cache and resizes it to
// the engine's participant count. Every field is fully rewritten (cand)
// or reset (loser) per fill, so no cross-round state can leak.
func (c *Cache) getScratch(np int) *trialScratch {
	var ss *trialScratch
	if c != nil {
		ss, _ = c.scratch.Get().(*trialScratch)
	}
	if ss == nil {
		ss = &trialScratch{}
	}
	if cap(ss.cand) < np {
		ss.cand = make([]int32, np)
	} else {
		ss.cand = ss.cand[:np]
	}
	ss.loser = ss.loser.Grow(np)
	ss.winners = ss.winners.Grow(np)
	return ss
}

// putScratch returns a scratch for reuse. No-op on a nil cache.
func (c *Cache) putScratch(ss *trialScratch) {
	if c != nil {
		c.scratch.Put(ss)
	}
}

// trialScratch is one worker's reusable evaluation state: cand[i] is
// participant i's candidate this seed (rewritten in full by every fill),
// loser marks candidates eliminated by a neighbor collision (cleared per
// seed) and winners is the and-not scratch the best-seen materialization
// carves winners into.
type trialScratch struct {
	cand    []int32
	loser   bitset.Mask
	winners bitset.Mask
}
