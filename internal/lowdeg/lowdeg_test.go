package lowdeg

import (
	"context"
	"testing"

	"parcolor/internal/d1lc"
	"parcolor/internal/graph"
	"parcolor/internal/par"
)

func TestIterativeDerandomizedProper(t *testing.T) {
	cases := map[string]*d1lc.Instance{
		"gnp":     d1lc.TrivialPalettes(graph.Gnp(200, 0.03, 1)),
		"cycle":   d1lc.TrivialPalettes(graph.Cycle(99)),
		"grid":    d1lc.TrivialPalettes(graph.Grid(10, 14)),
		"regular": d1lc.TrivialPalettes(graph.RandomRegular(150, 5, 2)),
		"delta+1": d1lc.DeltaPlus1Palettes(graph.Gnp(120, 0.05, 3)),
	}
	for name, in := range cases {
		col, stats, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d1lc.Verify(in, col); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, cert := range stats.Certificates {
			if !cert.Guarantee() {
				t.Fatalf("%s: certificate violated", name)
			}
		}
	}
}

func TestIterativeDeterministic(t *testing.T) {
	in := d1lc.TrivialPalettes(graph.Gnp(150, 0.04, 7))
	a, _, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("nondeterministic")
		}
	}
}

func TestIterativeRoundsLogarithmic(t *testing.T) {
	// Rounds should grow slowly with n (each round colors a constant
	// fraction — the conditional-expectations progress guarantee).
	small := mustStats(t, d1lc.TrivialPalettes(graph.RandomRegular(100, 4, 1)))
	big := mustStats(t, d1lc.TrivialPalettes(graph.RandomRegular(1600, 4, 1)))
	if big.Rounds > 4*small.Rounds+8 {
		t.Fatalf("rounds %d → %d: worse than logarithmic growth", small.Rounds, big.Rounds)
	}
}

func mustStats(t *testing.T, in *d1lc.Instance) Stats {
	t.Helper()
	col, stats, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1lc.Verify(in, col); err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestIterativeTinySeedSpaceStillTerminates(t *testing.T) {
	// SeedBits=1 gives a 2-seed family: fallbacks must keep it correct.
	in := d1lc.TrivialPalettes(graph.Complete(15))
	col, stats, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 1, MaxRounds: 400})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1lc.Verify(in, col); err != nil {
		t.Fatal(err)
	}
	t.Logf("fallbacks=%d rounds=%d", stats.GreedyFallback, stats.Rounds)
}

func TestComponentGreedyProper(t *testing.T) {
	g := graph.DisjointUnion(graph.Complete(8), graph.Cycle(9), graph.Star(7))
	in := d1lc.TrivialPalettes(g)
	col, err := ComponentGreedy(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1lc.Verify(in, col); err != nil {
		t.Fatal(err)
	}
}

func TestComponentGreedyCapacity(t *testing.T) {
	g := graph.Complete(20)
	in := d1lc.TrivialPalettes(g)
	if _, err := ComponentGreedy(in, 10); err == nil {
		t.Fatal("expected capacity error for a 20-node component")
	}
	if _, err := ComponentGreedy(in, 20); err != nil {
		t.Fatal(err)
	}
}

func TestMaxComponentSize(t *testing.T) {
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(5, 6)
	g := b.Build()
	if s := MaxComponentSize(g); s != 3 {
		t.Fatalf("max component %d want 3", s)
	}
}

// TestTableScoringMatchesNaive is the differential test of the
// contribution-table engine: per-round seed, score and certificate, the
// fallback accounting, and the final coloring must be bit-identical to the
// naive per-seed oracle — across instances, both selection strategies, and
// worker counts 1, 4 and GOMAXPROCS (the default bound).
func TestTableScoringMatchesNaive(t *testing.T) {
	cases := map[string]*d1lc.Instance{
		"gnp":     d1lc.TrivialPalettes(graph.Gnp(150, 0.04, 2)),
		"regular": d1lc.TrivialPalettes(graph.RandomRegular(120, 5, 3)),
		"k15":     d1lc.TrivialPalettes(graph.Complete(15)),
		"delta+1": d1lc.DeltaPlus1Palettes(graph.Gnp(100, 0.06, 5)),
	}
	for name, in := range cases {
		for _, bitwise := range []bool{false, true} {
			for _, workers := range []int{1, 4, 0} { // 0 = GOMAXPROCS default
				o := Options{SeedBits: 6, Bitwise: bitwise}
				oNaive := o
				oNaive.NaiveScoring = true
				o.Par = par.NewRunner(workers)
				oNaive.Par = par.NewRunner(workers)
				colT, statsT, errT := IterativeDerandomized(context.Background(), in, o)
				colN, statsN, errN := IterativeDerandomized(context.Background(), in, oNaive)
				if errT != nil || errN != nil {
					t.Fatalf("%s: errs: table=%v naive=%v", name, errT, errN)
				}
				if statsT.Rounds != statsN.Rounds || statsT.GreedyFallback != statsN.GreedyFallback {
					t.Fatalf("%s/bitwise=%v/w=%d: stats diverge: %+v vs %+v",
						name, bitwise, workers, statsT, statsN)
				}
				for i := range statsT.Certificates {
					a, b := statsT.Certificates[i], statsN.Certificates[i]
					if a.Seed != b.Seed || a.Score != b.Score ||
						a.SumScores != b.SumScores || a.MeanUpper() != b.MeanUpper() {
						t.Fatalf("%s/bitwise=%v/w=%d round %d diverges:\ntable %+v\nnaive %+v",
							name, bitwise, workers, i, a, b)
					}
				}
				for v := range colT.Colors {
					if colT.Colors[v] != colN.Colors[v] {
						t.Fatalf("%s/bitwise=%v/w=%d: colorings diverge at node %d",
							name, bitwise, workers, v)
					}
				}
			}
		}
	}
}

// TestTableEvalReduction pins the bitwise eval saving on the live solver.
func TestTableEvalReduction(t *testing.T) {
	in := d1lc.TrivialPalettes(graph.Gnp(100, 0.05, 9))
	const d = 5
	_, statsT, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: d, Bitwise: true})
	if err != nil {
		t.Fatal(err)
	}
	_, statsN, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: d, Bitwise: true, NaiveScoring: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range statsT.Certificates {
		if got, want := statsT.Certificates[i].Evals, 1<<d; got != want {
			t.Fatalf("round %d: table evals %d, want %d", i, got, want)
		}
		if got, want := statsN.Certificates[i].Evals, 1<<(d+1)-2; got != want {
			t.Fatalf("round %d: naive bitwise evals %d, want %d", i, got, want)
		}
	}
}

func TestIterativeBitwiseProper(t *testing.T) {
	in := d1lc.TrivialPalettes(graph.Gnp(120, 0.05, 4))
	col, stats, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 6, Bitwise: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1lc.Verify(in, col); err != nil {
		t.Fatal(err)
	}
	for _, cert := range stats.Certificates {
		if !cert.Guarantee() {
			t.Fatal("bitwise certificate violated")
		}
	}
}

func BenchmarkIterativeDerandomized(b *testing.B) {
	in := d1lc.TrivialPalettes(graph.RandomRegular(300, 6, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeedSelectionLowdeg ablates the scoring engine on a full
// iterative solve at n=300 (every trial round goes through seed
// selection): the contribution-table path (pooled participant-reset
// scratch + cached winning proposal) against the naive per-seed oracle,
// for both selection strategies. Results are identical across the axis;
// only cost differs.
func BenchmarkSeedSelectionLowdeg(b *testing.B) {
	in := d1lc.TrivialPalettes(graph.RandomRegular(300, 6, 1))
	for _, cfg := range []struct {
		name           string
		naive, bitwise bool
	}{
		{"naive/flat", true, false},
		{"naive/bitwise", true, true},
		{"table/flat", false, false},
		{"table/bitwise", false, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 8, Bitwise: cfg.bitwise, NaiveScoring: cfg.naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestFirstFreeFallbackPath(t *testing.T) {
	// A 1-seed space on K_n guarantees some zero-progress rounds that
	// exercise the firstFree fallback; with MaxRounds ≥ n it must finish.
	in := d1lc.TrivialPalettes(graph.Complete(10))
	col, stats, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 1, MaxRounds: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1lc.Verify(in, col); err != nil {
		t.Fatal(err)
	}
	if stats.GreedyFallback == 0 {
		t.Log("no fallbacks triggered this run (acceptable, seed family got lucky)")
	}
}

func TestIterativeMaxRoundsExhaustionStillProper(t *testing.T) {
	// Even with MaxRounds=1 the final FinishGreedy guarantees a complete
	// proper coloring.
	in := d1lc.TrivialPalettes(graph.Gnp(80, 0.1, 2))
	col, _, err := IterativeDerandomized(context.Background(), in, Options{SeedBits: 4, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1lc.Verify(in, col); err != nil {
		t.Fatal(err)
	}
}
