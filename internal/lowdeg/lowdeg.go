// Package lowdeg provides the deterministic low-degree D1LC solver that
// stands in for Lemma 14 of [CDP21c] (the paper uses it as a black box for
// instances with polylogarithmic maximum degree, and for the
// post-shattering residue).
//
// Two deterministic strategies are provided, mirroring the two situations
// the paper invokes Lemma 14 in:
//
//   - IterativeDerandomized: rounds of color trials where each node's
//     candidate is drawn by a seeded hash and the seed is chosen by the
//     method of conditional expectations to color at least the expected
//     fraction of live nodes. Under a pairwise-independent family each
//     round colors a constant fraction in expectation, so the chosen seed
//     colors a constant fraction deterministically; a greedy fallback on a
//     zero-progress round makes termination unconditional. This is the
//     [CDP21b]-style bounded-independence derandomization.
//
//   - ComponentGreedy: for shattered residues (small components), gather
//     each connected component and color it greedily — the MPC "collect
//     the component onto one machine" step, feasible whenever component
//     sizes fit in local space.
//
// The round-complexity gap versus the paper (O(log n) vs O(log log log n))
// is confined to this base case and reported separately in the E1 table;
// see DESIGN.md "Substitutions".
package lowdeg

import (
	"context"
	"fmt"

	"parcolor/internal/condexp"
	"parcolor/internal/d1lc"
	"parcolor/internal/graph"
	"parcolor/internal/hknt"
	"parcolor/internal/par"
	"parcolor/internal/rng"
	"parcolor/internal/trace"
)

// Options configures the iterative solver.
type Options struct {
	// SeedBits is the per-round seed space (default 10 → 1024 seeds).
	SeedBits int
	// MaxRounds caps trial rounds before greedy takeover (default 8·log₂n+16).
	MaxRounds int
	// Bitwise switches seed selection from flat enumeration to the
	// bit-by-bit method of conditional expectations (same guarantee; on the
	// table path the branch means are subset sums of precomputed totals).
	Bitwise bool
	// NaiveScoring forces the monolithic per-seed rescoring oracle instead
	// of the incremental contribution-table engine (engine.go). Both
	// produce identical results (seed, score, certificate, coloring); the
	// naive path exists for differential tests and ablation baselines.
	NaiveScoring bool
	// Par scopes the round's parallel loops and seed walks to an explicit
	// worker budget; IterativeDerandomized derives a context-carrying copy
	// from its ctx argument. nil means the process default.
	Par *par.Runner
	// Trace observes one phase per trial round. nil disables tracing.
	Trace trace.Tracer
	// Cache pools contribution tables and per-worker scratch across rounds
	// and runs. nil means per-round pooling only.
	Cache *Cache
}

// Stats reports a run.
type Stats struct {
	Rounds         int
	GreedyFallback int // nodes colored by zero-progress fallbacks
	Certificates   []condexp.Result
}

// IterativeDerandomized colors the instance deterministically by
// conditional-expectation-selected trial rounds. Seed scoring runs on the
// incremental contribution-table engine (engine.go) unless
// Options.NaiveScoring forces the per-seed oracle. Always returns a
// complete proper coloring (or an error only for invalid instances and
// cancellation).
//
// ctx cancels the run between rounds and inside every seed walk; on
// cancellation IterativeDerandomized returns ctx's error and no coloring.
// Parallelism is scoped by o.Par (nil = process default).
func IterativeDerandomized(ctx context.Context, in *d1lc.Instance, o Options) (*d1lc.Coloring, Stats, error) {
	n := in.G.N()
	if o.SeedBits == 0 {
		o.SeedBits = 10
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 8*log2(n+2) + 16
	}
	o.Par = o.Par.WithContext(ctx)
	st := o.Cache.getState(in)
	defer o.Cache.putState(st) // runs after the returned st.Col is captured
	st.Par = o.Par
	var stats Stats
	for r := 0; r < o.MaxRounds; r++ {
		if err := o.Par.Err(); err != nil {
			return nil, stats, err
		}
		parts := st.LiveNodes(nil)
		if len(parts) == 0 {
			break
		}
		sp := trace.Begin(o.Trace, "lowdeg", "trial-round", r, len(parts))
		var sel condexp.Result
		var eng *trialEngine
		var err error
		if o.NaiveScoring {
			sel, err = selectSeedNaive(st, parts, uint64(r), o)
		} else {
			eng = newTrialEngine(st, parts, uint64(r), o.Cache)
			sel, err = eng.selectSeedTable(o)
		}
		if err != nil {
			sp.End(0, 0, 0)
			return nil, stats, err
		}
		stats.Certificates = append(stats.Certificates, sel)
		stats.Rounds++
		if sel.Score == 0 {
			// No seed colors anything (tiny family on adversarial state):
			// force progress by greedily coloring the lowest live node.
			v := parts[0]
			c, err := firstFree(st, v)
			if err != nil {
				sp.End(sel.Evals, 0, 0)
				return nil, stats, err
			}
			st.SetColor(v, c)
			stats.GreedyFallback++
			sp.End(sel.Evals, 1, 0)
			continue
		}
		var prop hknt.Proposal
		if eng != nil {
			prop = eng.proposalFor(sel.Seed)
		} else {
			prop = proposeRound(st, parts, sel.Seed, uint64(r))
		}
		colored := st.Apply(prop)
		sp.End(sel.Evals, colored, 0)
	}
	if err := hknt.FinishGreedy(st); err != nil {
		return nil, stats, err
	}
	return st.Col, stats, nil
}

// selectSeedNaive is the monolithic oracle: one full proposal plus score
// per evaluated seed. It is the path the table engine is differentially
// tested against. A cancelled runner short-circuits the remaining
// evaluations and surfaces the context error.
func selectSeedNaive(st *hknt.State, parts []int32, round uint64, o Options) (condexp.Result, error) {
	scorer := func(seed uint64) int64 {
		if o.Par.Err() != nil {
			return 0 // discarded with the selection
		}
		return -int64(countWins(st, parts, seed, round))
	}
	var sel condexp.Result
	if o.Bitwise {
		sel = condexp.SelectSeedBitwise(o.Par, o.SeedBits, scorer)
	} else {
		sel = condexp.SelectSeed(o.Par, 1<<o.SeedBits, scorer)
	}
	if err := o.Par.Err(); err != nil {
		return condexp.Result{}, err
	}
	return sel, nil
}

// proposeRound computes the trial proposal for a (seed, round) pair and
// finishes its win mask, ready to commit.
func proposeRound(st *hknt.State, parts []int32, seed, round uint64) hknt.Proposal {
	prop := proposeRoundColors(st, parts, seed, round)
	prop.RecomputeWin(st.Par)
	return prop
}

// proposeRoundColors computes the colors array only: node v's candidate
// is Rem[v][h(seed, v, round) mod |Rem[v]|]; winners are the candidates
// no neighbor duplicated. The win mask is left empty — the naive scoring
// oracle counts wins by scanning the sentinels and never commits these
// proposals, so it skips the mask pass it would pay once per seed.
func proposeRoundColors(st *hknt.State, parts []int32, seed, round uint64) hknt.Proposal {
	n := st.In.G.N()
	cand := make([]int32, n)
	for i := range cand {
		cand[i] = d1lc.Uncolored
	}
	st.Par.For(len(parts), func(i int) {
		v := parts[i]
		if len(st.Rem[v]) == 0 {
			return
		}
		h := rng.Hash3(seed, uint64(v), round)
		cand[v] = st.Rem[v][h%uint64(len(st.Rem[v]))]
	})
	prop := hknt.NewProposal(n)
	st.Par.For(len(parts), func(i int) {
		v := parts[i]
		c := cand[v]
		if c == d1lc.Uncolored {
			return
		}
		for _, u := range st.In.G.Neighbors(v) {
			if cand[u] == c {
				return
			}
		}
		prop.Color[v] = c
	})
	return prop
}

// countWins scores a seed by the number of nodes its proposal colors.
func countWins(st *hknt.State, parts []int32, seed, round uint64) int {
	prop := proposeRoundColors(st, parts, seed, round)
	wins := 0
	for _, v := range parts {
		if prop.Color[v] != d1lc.Uncolored {
			wins++
		}
	}
	return wins
}

func firstFree(st *hknt.State, v int32) (int32, error) {
	for _, c := range st.Rem[v] {
		free := true
		for _, u := range st.In.G.Neighbors(v) {
			if st.Col.Colors[u] == c {
				free = false
				break
			}
		}
		if free {
			return c, nil
		}
	}
	return d1lc.Uncolored, fmt.Errorf("lowdeg: node %d has no free color (invalid instance)", v)
}

// ComponentGreedy colors the instance by gathering connected components
// and coloring each greedily. maxComponent bounds the component size a
// single "machine" may hold (0 = unbounded); components exceeding it are
// reported in the error, mirroring the MPC space constraint.
func ComponentGreedy(in *d1lc.Instance, maxComponent int) (*d1lc.Coloring, error) {
	comp, sizes := graph.Components(in.G)
	if maxComponent > 0 {
		for id, s := range sizes {
			if int(s) > maxComponent {
				return nil, fmt.Errorf("lowdeg: component %d has %d nodes > machine capacity %d",
					id, s, maxComponent)
			}
		}
	}
	col := d1lc.NewColoring(in.G.N())
	// Components are independent; color each in parallel.
	buckets := make([][]int32, len(sizes))
	for v := int32(0); v < int32(in.G.N()); v++ {
		buckets[comp[v]] = append(buckets[comp[v]], v)
	}
	errs := make([]error, len(buckets))
	par.For(len(buckets), func(ci int) {
		for _, v := range buckets[ci] {
			blocked := map[int32]bool{}
			for _, u := range in.G.Neighbors(v) {
				if c := col.Colors[u]; c != d1lc.Uncolored {
					blocked[c] = true
				}
			}
			assigned := false
			for _, c := range in.Palettes[v] {
				if !blocked[c] {
					col.Colors[v] = c
					assigned = true
					break
				}
			}
			if !assigned {
				errs[ci] = fmt.Errorf("lowdeg: no free color for node %d", v)
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return col, nil
}

// MaxComponentSize reports the largest component of g: the shattering
// metric of experiment E5.
func MaxComponentSize(g *graph.Graph) int {
	_, sizes := graph.Components(g)
	maxS := 0
	for _, s := range sizes {
		if int(s) > maxS {
			maxS = int(s)
		}
	}
	return maxS
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
