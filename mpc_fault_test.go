package parcolor_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"parcolor"
)

// The chaos differential contract: under any fault schedule, SolveOnMPC
// either produces the fault-free oracle's coloring bit-for-bit (via
// retries or the loopback fallback) or returns a classified transport
// error — never a silently different coloring.

func chaosOracle(t *testing.T, s *parcolor.Solver, in *parcolor.Instance) []int32 {
	t.Helper()
	res, err := s.SolveOnMPC(context.Background(), in, 0, 5)
	if err != nil {
		t.Fatalf("fault-free oracle solve: %v", err)
	}
	return res.Coloring.Colors
}

func sameColors(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChaosDifferential(t *testing.T) {
	s, err := parcolor.NewSolver()
	if err != nil {
		t.Fatal(err)
	}
	in := parcolor.TrivialPalettes(parcolor.GenerateGraph("gnp-sparse", 72, 3))
	oracle := chaosOracle(t, s, in)

	retry := parcolor.MPCRetryPolicy{
		MaxAttempts: 10,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
	}
	kinds := []struct {
		name     string
		schedule func(seed uint64) parcolor.FaultSchedule
		deadline time.Duration
	}{
		{
			name: "drop",
			schedule: func(seed uint64) parcolor.FaultSchedule {
				return parcolor.FaultSchedule{Seed: seed, DropProb: 0.02, DupProb: 0.01, ReorderProb: 0.1}
			},
		},
		{
			name: "straggler",
			schedule: func(seed uint64) parcolor.FaultSchedule {
				return parcolor.FaultSchedule{
					Seed:        seed,
					BaseLatency: time.Millisecond,
					Stragglers:  []parcolor.StragglerSpan{{Machine: int(seed % 7), From: 0, To: 6, Factor: 10}},
				}
			},
			deadline: 2 * time.Millisecond,
		},
		{
			name: "crash",
			schedule: func(seed uint64) parcolor.FaultSchedule {
				return parcolor.FaultSchedule{
					Seed:    seed,
					Crashes: []parcolor.CrashSpan{{Machine: int(seed % 5), From: 2, To: 7}},
				}
			},
		},
		{
			name: "silent-crash",
			schedule: func(seed uint64) parcolor.FaultSchedule {
				return parcolor.FaultSchedule{
					Seed:    seed,
					Crashes: []parcolor.CrashSpan{{Machine: 3, From: 0, To: 4, Silent: true}},
				}
			},
		},
	}
	for _, k := range kinds {
		for _, seed := range []uint64{1, 2, 3} {
			k, seed := k, seed
			t.Run(k.name, func(t *testing.T) {
				res, err := s.SolveOnMPC(context.Background(), in, 0, 5,
					parcolor.WithMPCFaults(k.schedule(seed)),
					parcolor.WithMPCDeadline(k.deadline),
					parcolor.WithMPCRetry(retry),
					parcolor.WithMPCFallback(true),
				)
				if err != nil {
					t.Fatalf("seed %d: lossy solve with retry+fallback failed: %v", seed, err)
				}
				if !sameColors(res.Coloring.Colors, oracle) {
					t.Fatalf("seed %d: lossy coloring differs from fault-free oracle (degraded=%v)", seed, res.Degraded)
				}
				if res.FaultEvents == 0 && k.name != "straggler" {
					// Straggler schedules can inject zero events when the
					// machine index never sends in the faulted window; the
					// others always trip on these seeds.
					t.Errorf("seed %d: schedule injected no faults — test exercises nothing", seed)
				}
				if res.Retries == 0 && !res.Degraded && res.FaultEvents > 0 {
					t.Errorf("seed %d: faults were injected but neither retried nor degraded", seed)
				}
			})
		}
	}
}

// Without a fallback and with a starved retry budget, heavy loss must
// surface as a classified error — never as a wrong coloring.
func TestChaosClassifiedErrorWithoutFallback(t *testing.T) {
	s, err := parcolor.NewSolver()
	if err != nil {
		t.Fatal(err)
	}
	in := parcolor.TrivialPalettes(parcolor.GenerateGraph("gnp-sparse", 72, 3))
	oracle := chaosOracle(t, s, in)
	for _, seed := range []uint64{1, 2, 3} {
		res, err := s.SolveOnMPC(context.Background(), in, 0, 5,
			parcolor.WithMPCFaults(parcolor.FaultSchedule{Seed: seed, DropProb: 0.3}),
			parcolor.WithMPCRetry(parcolor.MPCRetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Microsecond}),
		)
		if err != nil {
			if !parcolor.IsMPCTransportFault(err) {
				t.Fatalf("seed %d: error is not a classified transport fault: %v", seed, err)
			}
			if !errors.Is(err, parcolor.ErrMPCSegmentLost) {
				t.Errorf("seed %d: 30%% drop should classify as segment loss, got %v", seed, err)
			}
			continue
		}
		if !sameColors(res.Coloring.Colors, oracle) {
			t.Fatalf("seed %d: survived heavy loss but coloring differs from oracle", seed)
		}
	}
}

// A crash that outlives every retry budget must classify as machine loss
// when no fallback is armed, and still recover bit-identically when one is.
func TestChaosCrashClassification(t *testing.T) {
	s, err := parcolor.NewSolver()
	if err != nil {
		t.Fatal(err)
	}
	in := parcolor.TrivialPalettes(parcolor.GenerateGraph("cycle", 48, 1))
	sched := parcolor.FaultSchedule{Crashes: []parcolor.CrashSpan{{Machine: 0, From: 0, To: -1}}}
	_, err = s.SolveOnMPC(context.Background(), in, 0, 5,
		parcolor.WithMPCFaults(sched),
		parcolor.WithMPCRetry(parcolor.MPCRetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Microsecond}),
	)
	if !errors.Is(err, parcolor.ErrMPCMachineLost) {
		t.Fatalf("permanent crash without fallback: want ErrMPCMachineLost, got %v", err)
	}
	res, err := s.SolveOnMPC(context.Background(), in, 0, 5,
		parcolor.WithMPCFaults(sched),
		parcolor.WithMPCRetry(parcolor.MPCRetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Microsecond}),
		parcolor.WithMPCFallback(true),
	)
	if err != nil {
		t.Fatalf("permanent crash with fallback: %v", err)
	}
	if !res.Degraded || res.DegradedReason == "" {
		t.Fatalf("fallback run must record degradation, got %+v", res)
	}
	if !sameColors(res.Coloring.Colors, chaosOracle(t, s, in)) {
		t.Fatal("degraded coloring differs from fault-free oracle")
	}
}

// A zero-probability injector must be a true no-op: identical coloring,
// rounds, and space accounting to a run with no injector at all.
func TestChaosZeroScheduleIdentical(t *testing.T) {
	s, err := parcolor.NewSolver()
	if err != nil {
		t.Fatal(err)
	}
	in := parcolor.TrivialPalettes(parcolor.GenerateGraph("gnp-sparse", 72, 3))
	clean, err := s.SolveOnMPC(context.Background(), in, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := s.SolveOnMPC(context.Background(), in, 0, 5,
		parcolor.WithMPCFaults(parcolor.FaultSchedule{Seed: 42}),
		parcolor.WithMPCRetry(parcolor.MPCRetryPolicy{MaxAttempts: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !sameColors(clean.Coloring.Colors, wrapped.Coloring.Colors) {
		t.Fatal("zero-fault injector changed the coloring")
	}
	if clean.MPCRounds != wrapped.MPCRounds || clean.MaxSent != wrapped.MaxSent ||
		clean.MaxReceived != wrapped.MaxReceived || clean.MaxStored != wrapped.MaxStored {
		t.Fatalf("zero-fault injector changed engine accounting: clean=%+v wrapped=%+v", clean, wrapped)
	}
	if wrapped.FaultEvents != 0 || wrapped.Retries != 0 || wrapped.Degraded {
		t.Fatalf("zero-fault run reported fault activity: %+v", wrapped)
	}
}
