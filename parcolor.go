// Package parcolor is a Go implementation of "Parallel Derandomization for
// Coloring" (Coy, Czumaj, Davies-Peck, Mishra; IPDPS 2024,
// arXiv:2302.04378): deterministic and randomized (degree+1)-list-coloring
// (D1LC) solvers built from the paper's derandomization framework for the
// sublinear-space Massively Parallel Computation model.
//
// The deterministic solver (Theorem 1) composes three layers:
//
//  1. recursive degree reduction (Section 6, LowSpaceColorReduce),
//  2. the HKNT22 pre-shattering pipeline expressed as normal
//     (τ,Δ)-round distributed procedures (Definition 5) and derandomized
//     with PRGs plus the method of conditional expectations (Lemma 10,
//     Theorem 12), and
//  3. a deterministic low-degree finisher.
//
// Every solver returns a complete, proper coloring for every valid
// instance — the framework defers nodes that fail their strong success
// properties and re-colors them through D1LC self-reducibility, so PRG
// quality affects measured rounds, never correctness.
//
// Quick start:
//
//	g := parcolor.GenerateGraph("gnp-sparse", 1000, 1)
//	in := parcolor.TrivialPalettes(g)
//	res, err := parcolor.Solve(in, parcolor.Options{})
//	// res.Coloring is a verified proper coloring.
package parcolor

import (
	"fmt"

	"parcolor/internal/d1lc"
	"parcolor/internal/deframe"
	"parcolor/internal/graph"
	"parcolor/internal/greedy"
	"parcolor/internal/hknt"
	"parcolor/internal/lowdeg"
	"parcolor/internal/mis"
	"parcolor/internal/mpc"
	"parcolor/internal/par"
	"parcolor/internal/sparsify"
)

// Re-exported core types. They alias the internal implementations so that
// downstream users can name them without reaching into internal packages.
type (
	// Graph is an immutable undirected simple graph in CSR form.
	Graph = graph.Graph
	// Instance is a D1LC instance: a graph plus per-node palettes of size
	// ≥ degree+1.
	Instance = d1lc.Instance
	// Coloring is a (possibly partial) color assignment.
	Coloring = d1lc.Coloring
)

// Uncolored is the sentinel for unassigned nodes.
const Uncolored = d1lc.Uncolored

// Algorithm selects a solver.
type Algorithm int

// Available algorithms.
const (
	// Deterministic is the Theorem 1 solver (default).
	Deterministic Algorithm = iota
	// Randomized is the Lemma 4 solver.
	Randomized
	// GreedySequential is the single-machine baseline.
	GreedySequential
	// LowDegreeDeterministic is the conditional-expectations iterative
	// solver (the Lemma 14 stand-in), usable directly on any instance.
	LowDegreeDeterministic
)

func (a Algorithm) String() string {
	switch a {
	case Deterministic:
		return "deterministic"
	case Randomized:
		return "randomized"
	case GreedySequential:
		return "greedy"
	case LowDegreeDeterministic:
		return "lowdeg"
	}
	return "?"
}

// Options configures Solve. The zero value is a sensible default for all
// algorithms.
type Options struct {
	// Algorithm selects the solver (default Deterministic).
	Algorithm Algorithm
	// Seed drives the Randomized and GreedySequential(random-order)
	// algorithms; ignored by the deterministic ones.
	Seed uint64
	// SeedBits caps the PRG seed space for derandomization (default
	// Θ(log Δ) capped at 12).
	SeedBits int
	// UseNisan switches the derandomizer from the k-wise PRG to the
	// Nisan-style generator.
	UseNisan bool
	// Bitwise selects bit-by-bit conditional expectations instead of full
	// parallel seed enumeration.
	Bitwise bool
	// NaiveScoring forces the derandomizer's monolithic per-seed scoring
	// path instead of the incremental contribution-table engine; results
	// are identical, only cost differs (ablation/benchmark baseline).
	NaiveScoring bool
	// Bins is the sparsification fan-out n^δ (0 = auto).
	Bins int
	// MidDegree is the degree threshold below which nodes skip
	// sparsification (0 = auto).
	MidDegree int
	// LowDeg is the HKNT low-degree cutoff (paper: log⁷n; 0 = scaled auto).
	LowDeg int
	// DegreeRanges makes the Randomized solver peel degree ranges
	// high-to-low (the paper's Section 3 structure) instead of running a
	// single ColorMiddle pass.
	DegreeRanges bool
	// Workers bounds worker goroutines (0 = GOMAXPROCS).
	Workers int
	// SkipVerify disables the built-in output verification.
	SkipVerify bool
}

// Result is a Solve outcome.
type Result struct {
	Coloring *Coloring
	// Rounds is the LOCAL-round accounting of the distributed portion
	// (greedy baseline reports 0).
	Rounds int
	// DistinctColors used by the solution.
	DistinctColors int
	// Deterministic-path reports (nil for other algorithms).
	Sparsify *sparsify.Report
	// DeferralFraction is the worst per-step deferral ratio observed.
	DeferralFraction float64
}

// Solve colors the instance with the selected algorithm and verifies the
// result (unless SkipVerify).
func Solve(in *Instance, o Options) (*Result, error) {
	if err := in.Check(); err != nil {
		return nil, err
	}
	if o.Workers > 0 {
		prev := par.SetMaxWorkers(o.Workers)
		defer par.SetMaxWorkers(prev)
	}
	var (
		res *Result
		err error
	)
	switch o.Algorithm {
	case Randomized:
		res, err = solveRandomized(in, o)
	case GreedySequential:
		res, err = solveGreedy(in, o)
	case LowDegreeDeterministic:
		res, err = solveLowDeg(in, o)
	default:
		res, err = solveDeterministic(in, o)
	}
	if err != nil {
		return nil, err
	}
	if !o.SkipVerify {
		if err := d1lc.Verify(in, res.Coloring); err != nil {
			return nil, fmt.Errorf("parcolor: internal error, solver produced invalid coloring: %w", err)
		}
	}
	res.DistinctColors = greedy.DistinctColors(res.Coloring)
	return res, nil
}

func deframeOptions(o Options) deframe.Options {
	dopt := deframe.Options{
		SeedBits:     o.SeedBits,
		Bitwise:      o.Bitwise,
		NaiveScoring: o.NaiveScoring,
		Tunables:     hknt.Tunables{LowDeg: o.LowDeg},
	}
	if o.UseNisan {
		dopt.PRG = deframe.PRGNisan
	}
	return dopt
}

// solveDeterministic is Theorem 1: LowSpaceColorReduce over the deframe
// base solver. Rounds are accounted for parallel composition: base
// instances at one recursion level run concurrently on disjoint machine
// groups, so the level cost is the maximum, not the sum.
func solveDeterministic(in *Instance, o Options) (*Result, error) {
	rounds := 0
	deferral := 0.0
	base := func(sub *d1lc.Instance) (*d1lc.Coloring, error) {
		col, rep, err := deframe.Run(sub, deframeOptions(o))
		if err != nil {
			return nil, err
		}
		if r := rep.TotalRounds(); r > rounds {
			rounds = r
		}
		if f := rep.MaxDeferralFraction(); f > deferral {
			deferral = f
		}
		return col, nil
	}
	col, srep, err := sparsify.ColorReduce(in, sparsify.Options{Bins: o.Bins, MidDegree: o.MidDegree}, base)
	if err != nil {
		return nil, err
	}
	return &Result{Coloring: col, Rounds: rounds, Sparsify: srep, DeferralFraction: deferral}, nil
}

func solveRandomized(in *Instance, o Options) (*Result, error) {
	if o.DegreeRanges {
		st := hknt.NewState(in)
		if _, err := hknt.RangedRandomizedColor(st, o.Seed, hknt.Tunables{LowDeg: o.LowDeg}); err != nil {
			return nil, err
		}
		return &Result{Coloring: st.Col, Rounds: st.Meter.Rounds}, nil
	}
	col, st, _, err := hknt.RandomizedColor(in, o.Seed, hknt.Tunables{LowDeg: o.LowDeg})
	if err != nil {
		return nil, err
	}
	return &Result{Coloring: col, Rounds: st.Meter.Rounds}, nil
}

func solveGreedy(in *Instance, o Options) (*Result, error) {
	col, err := greedy.Color(in, greedy.ByID, o.Seed)
	if err != nil {
		return nil, err
	}
	return &Result{Coloring: col}, nil
}

func solveLowDeg(in *Instance, o Options) (*Result, error) {
	sb := o.SeedBits
	if sb == 0 {
		sb = 10
	}
	col, stats, err := lowdeg.IterativeDerandomized(in, lowdeg.Options{
		SeedBits:     sb,
		Bitwise:      o.Bitwise,
		NaiveScoring: o.NaiveScoring,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Coloring: col, Rounds: stats.Rounds}, nil
}

// Verify checks that col is a complete proper list coloring of in.
func Verify(in *Instance, col *Coloring) error { return d1lc.Verify(in, col) }

// --- Graph and instance construction ----------------------------------------

// GenerateGraph builds one of the named workload graphs:
// "gnp-sparse", "gnp-dense", "regular", "powerlaw", "cliques", "mixed",
// "caterpillar", "cycle", "complete". It panics on unknown names; use
// graph generators through NewGraphBuilder for custom topologies.
func GenerateGraph(name string, n int, seed uint64) *Graph {
	g, err := graph.Named(name, n, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// GraphNames lists the generator names accepted by GenerateGraph.
func GraphNames() []string {
	return []string{"gnp-sparse", "gnp-dense", "regular", "powerlaw", "cliques", "mixed", "caterpillar", "cycle", "complete"}
}

// GraphBuilder accumulates edges for a custom graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for an n-node graph.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// TrivialPalettes gives each node the palette {0,…,deg(v)}.
func TrivialPalettes(g *Graph) *Instance { return d1lc.TrivialPalettes(g) }

// DeltaPlus1Palettes gives every node {0,…,Δ}: (Δ+1)-coloring as D1LC.
func DeltaPlus1Palettes(g *Graph) *Instance { return d1lc.DeltaPlus1Palettes(g) }

// RandomPalettes draws each node a random (deg+1+extra)-subset of a color
// universe.
func RandomPalettes(g *Graph, extra, universe int, seed uint64) *Instance {
	return d1lc.RandomPalettes(g, extra, universe, seed)
}

// NewInstance wraps a graph and explicit palettes (validated by Check on
// Solve).
func NewInstance(g *Graph, palettes [][]int32) *Instance {
	return &Instance{G: g, Palettes: palettes}
}

// EdgeColoringInstance reduces (2Δ−1)-edge-coloring of g to D1LC on the
// line graph: line-graph node i corresponds to edges[i], and palettes are
// {0,…,deg_L(i)} ⊆ {0,…,2Δ−2}. Coloring the returned instance and reading
// color[i] for edges[i] yields a proper edge coloring with at most 2Δ−1
// colors.
func EdgeColoringInstance(g *Graph) (*Instance, [][2]int32) {
	lg, edges := graph.LineGraph(g)
	return d1lc.TrivialPalettes(lg), edges
}

// --- MPC-faithful solving -----------------------------------------------------

// MPCResult is the outcome of SolveOnMPC.
type MPCResult struct {
	Coloring *Coloring
	// MPCRounds counts actual engine rounds (selection trees included).
	MPCRounds int
	// TrialRounds counts derandomized TryRandomColor trials.
	TrialRounds int
	// MaxStored/MaxSent/MaxReceived are per-machine high-water word
	// counts; Violations counts space-cap breaches (0 when LocalSpace is
	// sufficient).
	MaxStored, MaxSent, MaxReceived int64
	Violations                      int
	Machines                        int
}

// SolveOnMPC colors the instance with every round executed on the
// simulated MPC cluster: per-round Lemma 10 derandomization (PRG chunks,
// palette exchange, distributed conditional expectations, commit) and the
// Theorem 12 greedy base case on machine 0 — no shared-memory shortcuts.
// localSpace is s in words (0 picks a generous default); the engine
// records space high-water marks rather than failing, so callers can
// inspect how much space the run actually needed. Orders of magnitude
// slower than Solve; intended for model-faithful validation and teaching.
func SolveOnMPC(in *Instance, localSpace int, seedBits int) (*MPCResult, error) {
	if err := in.Check(); err != nil {
		return nil, err
	}
	if localSpace == 0 {
		localSpace = 1 << 16
	}
	if seedBits == 0 {
		seedBits = 6
	}
	c, err := mpc.NewCluster(mpc.Config{Machines: in.G.N() + 1, LocalSpace: localSpace})
	if err != nil {
		return nil, err
	}
	col, stats, err := mpc.DeterministicColorMPC(c, in, seedBits, 0)
	if err != nil {
		return nil, err
	}
	if err := d1lc.Verify(in, col); err != nil {
		return nil, fmt.Errorf("parcolor: internal error, MPC solver produced invalid coloring: %w", err)
	}
	m := c.Metrics
	return &MPCResult{
		Coloring:    col,
		MPCRounds:   stats.MPCRounds,
		TrialRounds: stats.TRCRounds,
		MaxStored:   m.MaxStored,
		MaxSent:     m.MaxSent,
		MaxReceived: m.MaxReceived,
		Violations:  m.Violations,
		Machines:    len(c.Machines),
	}, nil
}

// --- MIS (the framework's second application) -------------------------------

// MISResult is a maximal-independent-set outcome.
type MISResult struct {
	InSet  []int32
	Rounds int
}

// MISDeterministic computes an MIS with the derandomized Luby algorithm
// (the paper's Definition 5 worked example).
func MISDeterministic(g *Graph) MISResult {
	r := mis.Derandomized(g, mis.Options{})
	return MISResult{InSet: r.InSetNodes(), Rounds: r.Rounds}
}

// MISRandomized computes an MIS with Luby's randomized algorithm.
func MISRandomized(g *Graph, seed uint64) MISResult {
	r := mis.Randomized(g, seed, 10*64)
	return MISResult{InSet: r.InSetNodes(), Rounds: r.Rounds}
}
