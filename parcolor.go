// Package parcolor is a Go implementation of "Parallel Derandomization for
// Coloring" (Coy, Czumaj, Davies-Peck, Mishra; IPDPS 2024,
// arXiv:2302.04378): deterministic and randomized (degree+1)-list-coloring
// (D1LC) solvers built from the paper's derandomization framework for the
// sublinear-space Massively Parallel Computation model.
//
// The deterministic solver (Theorem 1) composes three layers:
//
//  1. recursive degree reduction (Section 6, LowSpaceColorReduce),
//  2. the HKNT22 pre-shattering pipeline expressed as normal
//     (τ,Δ)-round distributed procedures (Definition 5) and derandomized
//     with PRGs plus the method of conditional expectations (Lemma 10,
//     Theorem 12), and
//  3. a deterministic low-degree finisher.
//
// Every solver returns a complete, proper coloring for every valid
// instance — the framework defers nodes that fail their strong success
// properties and re-colors them through D1LC self-reducibility, so PRG
// quality affects measured rounds, never correctness.
//
// Quick start — construct a reusable Solver once, then solve any number
// of instances (concurrently, if desired) on it:
//
//	solver, err := parcolor.NewSolver() // deterministic Theorem 1 solver
//	if err != nil { ... }
//	g := parcolor.GenerateGraph("gnp-sparse", 1000, 1)
//	in := parcolor.TrivialPalettes(g)
//	res, err := solver.Solve(ctx, in)
//	// res.Coloring is a verified proper coloring.
//
// The Solver owns its worker budget (parcolor.WithWorkers — two Solvers
// with different budgets never interfere), honors context cancellation in
// every long loop, keeps the derandomization engines' scratch warm across
// solves, streams batches through one shared pool
// (Solver.SolveBatch), and reports per-phase progress through an attached
// Tracer (parcolor.WithTrace). The package-level Solve, SolveOnMPC and
// MISDeterministic remain as thin compatibility wrappers over a default
// Solver.
//
// Two classical randomized baselines ship as first-class algorithms for
// benchmarking the derandomized pipeline against the literature's
// standard comparison points:
//
//	jp, _ := parcolor.NewSolver(parcolor.WithAlgorithm(parcolor.JonesPlassmann))
//	lb, _ := parcolor.NewSolver(parcolor.WithAlgorithm(parcolor.LubyColoring))
//
// Both scale past 10^6 vertices; `make bench-scale` (cmd/scalebench)
// sweeps them alongside the deterministic solver on gnp and Chung–Lu
// power-law graphs and records wall time, rounds, peak live heap and
// color counts. parcolor.WithDegreeShard(true) additionally solves on a
// degree-sorted sharded relabeling of the input (cache-friendly CSR
// layout for skewed degree distributions) and maps the coloring back to
// the original ids.
package parcolor

import (
	"context"
	"fmt"

	"parcolor/internal/d1lc"
	"parcolor/internal/faultinject"
	"parcolor/internal/graph"
	"parcolor/internal/mis"
	"parcolor/internal/mpc"
	"parcolor/internal/sparsify"
)

// Re-exported core types. They alias the internal implementations so that
// downstream users can name them without reaching into internal packages.
type (
	// Graph is an immutable undirected simple graph in CSR form.
	Graph = graph.Graph
	// Instance is a D1LC instance: a graph plus per-node palettes of size
	// ≥ degree+1.
	Instance = d1lc.Instance
	// Coloring is a (possibly partial) color assignment.
	Coloring = d1lc.Coloring
)

// Uncolored is the sentinel for unassigned nodes.
const Uncolored = d1lc.Uncolored

// Algorithm selects a solver.
type Algorithm int

// Available algorithms.
const (
	// Deterministic is the Theorem 1 solver (default).
	Deterministic Algorithm = iota
	// Randomized is the Lemma 4 solver.
	Randomized
	// GreedySequential is the single-machine baseline.
	GreedySequential
	// LowDegreeDeterministic is the conditional-expectations iterative
	// solver (the Lemma 14 stand-in), usable directly on any instance.
	LowDegreeDeterministic
	// JonesPlassmann is the classical randomized parallel baseline: random
	// priorities drawn once, local maxima color greedily each round. No
	// derandomization; the comparison point for scale benchmarks.
	JonesPlassmann
	// LubyColoring is the classical Luby-based baseline: repeated
	// randomized Luby MIS on the uncolored residual, each selected set
	// taking its smallest available palette colors simultaneously.
	LubyColoring
)

// AlgorithmByName maps the canonical lowercase names — the exact strings
// Algorithm.String returns ("deterministic", "randomized", "greedy",
// "lowdeg", "jp", "luby") — back to Algorithm values. It is the single
// name registry for every text surface (CLI flags, the serving API's
// request field, bench harness specs).
func AlgorithmByName(name string) (Algorithm, error) {
	switch name {
	case "deterministic":
		return Deterministic, nil
	case "randomized":
		return Randomized, nil
	case "greedy":
		return GreedySequential, nil
	case "lowdeg":
		return LowDegreeDeterministic, nil
	case "jp":
		return JonesPlassmann, nil
	case "luby":
		return LubyColoring, nil
	}
	return 0, fmt.Errorf("parcolor: unknown algorithm %q", name)
}

// AlgorithmNames lists the names accepted by AlgorithmByName.
func AlgorithmNames() []string {
	return []string{"deterministic", "randomized", "greedy", "lowdeg", "jp", "luby"}
}

func (a Algorithm) String() string {
	switch a {
	case Deterministic:
		return "deterministic"
	case Randomized:
		return "randomized"
	case GreedySequential:
		return "greedy"
	case LowDegreeDeterministic:
		return "lowdeg"
	case JonesPlassmann:
		return "jp"
	case LubyColoring:
		return "luby"
	}
	return "?"
}

// Options configures Solve. The zero value is a sensible default for all
// algorithms.
type Options struct {
	// Algorithm selects the solver (default Deterministic).
	Algorithm Algorithm
	// Seed drives the Randomized and GreedySequential(random-order)
	// algorithms; ignored by the deterministic ones.
	Seed uint64
	// SeedBits caps the PRG seed space for derandomization (default
	// Θ(log Δ) capped at 12).
	SeedBits int
	// UseNisan switches the derandomizer from the k-wise PRG to the
	// Nisan-style generator.
	UseNisan bool
	// Bitwise selects bit-by-bit conditional expectations instead of full
	// parallel seed enumeration.
	Bitwise bool
	// NaiveScoring forces the derandomizer's monolithic per-seed scoring
	// path instead of the incremental contribution-table engine; results
	// are identical, only cost differs (ablation/benchmark baseline).
	NaiveScoring bool
	// Bins is the sparsification fan-out n^δ (0 = auto).
	Bins int
	// MidDegree is the degree threshold below which nodes skip
	// sparsification (0 = auto).
	MidDegree int
	// LowDeg is the HKNT low-degree cutoff (paper: log⁷n; 0 = scaled auto).
	LowDeg int
	// DegreeRanges makes the Randomized solver peel degree ranges
	// high-to-low (the paper's Section 3 structure) instead of running a
	// single ColorMiddle pass.
	DegreeRanges bool
	// Workers bounds worker goroutines (0 = GOMAXPROCS).
	Workers int
	// SkipVerify disables the built-in output verification.
	SkipVerify bool
	// DegreeShard solves on the degree-sorted sharded relabeling of the
	// graph (see internal/graph.DegreeSorted) and maps the coloring back
	// to original vertex ids. A pure layout optimization: the result is
	// always a verified proper coloring of the original instance, and on
	// regular graphs (identity relabeling) it is bit-identical to the
	// unsharded solve.
	DegreeShard bool
	// SerialBins makes the deterministic solver's sparsification schedule
	// solve restricted bins sequentially through the copy-based
	// extraction path instead of the fused parallel schedule. Results are
	// bit-identical either way — this is the differential oracle and
	// ablation baseline, not a tuning knob.
	SerialBins bool
}

// Result is a Solve outcome.
type Result struct {
	Coloring *Coloring
	// Rounds is the LOCAL-round accounting of the distributed portion
	// (greedy baseline reports 0).
	Rounds int
	// DistinctColors used by the solution.
	DistinctColors int
	// Deterministic-path reports (nil for other algorithms).
	Sparsify *sparsify.Report
	// DeferralFraction is the worst per-step deferral ratio observed.
	DeferralFraction float64
}

// Verify checks that col is a complete proper list coloring of in.
func Verify(in *Instance, col *Coloring) error { return d1lc.Verify(in, col) }

// --- Graph and instance construction ----------------------------------------

// GenerateGraph builds one of the named workload graphs:
// "gnp-sparse", "gnp-dense", "regular", "powerlaw" (preferential
// attachment), "chunglu" (Chung–Lu power-law), "cliques", "mixed",
// "caterpillar", "cycle", "complete". It panics on unknown names; use
// graph generators through NewGraphBuilder for custom topologies.
func GenerateGraph(name string, n int, seed uint64) *Graph {
	g, err := graph.Named(name, n, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// GraphNames lists the generator names accepted by GenerateGraph.
func GraphNames() []string {
	return []string{"gnp-sparse", "gnp-dense", "regular", "powerlaw", "chunglu", "cliques", "mixed", "caterpillar", "cycle", "complete"}
}

// GraphBuilder accumulates edges for a custom graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for an n-node graph.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// TrivialPalettes gives each node the palette {0,…,deg(v)}.
func TrivialPalettes(g *Graph) *Instance { return d1lc.TrivialPalettes(g) }

// DeltaPlus1Palettes gives every node {0,…,Δ}: (Δ+1)-coloring as D1LC.
func DeltaPlus1Palettes(g *Graph) *Instance { return d1lc.DeltaPlus1Palettes(g) }

// RandomPalettes draws each node a random (deg+1+extra)-subset of a color
// universe.
func RandomPalettes(g *Graph, extra, universe int, seed uint64) *Instance {
	return d1lc.RandomPalettes(g, extra, universe, seed)
}

// NewInstance wraps a graph and explicit palettes (validated by Check on
// Solve).
func NewInstance(g *Graph, palettes [][]int32) *Instance {
	return &Instance{G: g, Palettes: palettes}
}

// EdgeColoringInstance reduces (2Δ−1)-edge-coloring of g to D1LC on the
// line graph: line-graph node i corresponds to edges[i], and palettes are
// {0,…,deg_L(i)} ⊆ {0,…,2Δ−2}. Coloring the returned instance and reading
// color[i] for edges[i] yields a proper edge coloring with at most 2Δ−1
// colors.
func EdgeColoringInstance(g *Graph) (*Instance, [][2]int32) {
	lg, edges := graph.LineGraph(g)
	return d1lc.TrivialPalettes(lg), edges
}

// --- MPC-faithful solving -----------------------------------------------------

// Fault-tolerance surface. These alias the internal implementations so
// callers can configure lossy transports and recovery policy without
// importing internal packages.
type (
	// MPCTransport delivers one MPC round's messages; implement it to put
	// the cluster on a real (or deliberately faulty) wire. The default is
	// the in-process loopback.
	MPCTransport = mpc.Transport
	// MPCRetryPolicy bounds per-phase retries after classified transport
	// faults (see WithMPCRetry).
	MPCRetryPolicy = mpc.RetryPolicy
	// FaultSchedule is a deterministic, seeded fault plan for
	// WithMPCFaults: message drops/dups/reorders, stragglers, crashes.
	FaultSchedule = faultinject.Schedule
	// StragglerSpan slows one machine during a tick window.
	StragglerSpan = faultinject.StragglerSpan
	// CrashSpan takes one machine down during a tick window.
	CrashSpan = faultinject.CrashSpan
)

// Classified transport faults surfaced by SolveOnMPC when retries are
// exhausted and no fallback is configured. Match with errors.Is.
var (
	// ErrMPCRoundTimeout: a round missed its deadline (straggler).
	ErrMPCRoundTimeout = mpc.ErrRoundTimeout
	// ErrMPCMachineLost: a machine crashed loudly mid-round.
	ErrMPCMachineLost = mpc.ErrMachineLost
	// ErrMPCSegmentLost: a protocol phase detected dropped messages.
	ErrMPCSegmentLost = mpc.ErrSegmentLost
)

// IsMPCTransportFault reports whether err is (or wraps) one of the
// classified transport faults above.
func IsMPCTransportFault(err error) bool { return mpc.IsTransportFault(err) }

// MPCResult is the outcome of SolveOnMPC.
type MPCResult struct {
	Coloring *Coloring
	// MPCRounds counts actual engine rounds (selection trees included).
	MPCRounds int
	// TrialRounds counts derandomized TryRandomColor trials.
	TrialRounds int
	// MaxStored/MaxSent/MaxReceived are per-machine high-water word
	// counts; Violations counts space-cap breaches (0 when LocalSpace is
	// sufficient).
	MaxStored, MaxSent, MaxReceived int64
	Violations                      int
	Machines                        int
	// Retries counts protocol-phase re-attempts recovered from transport
	// faults; FaultEvents counts faults injected by a WithMPCFaults
	// schedule (0 on clean transports).
	Retries     int
	FaultEvents int64
	// Degraded is set when the lossy run exhausted its retry budget and
	// the solve fell back to a fault-free in-process cluster
	// (WithMPCFallback); DegradedReason carries the fault that forced it.
	// The fallback re-runs the same deterministic protocol, so the
	// coloring is bit-identical to a fault-free run.
	Degraded       bool
	DegradedReason string
}

// SolveOnMPC colors the instance with every round executed on the
// simulated MPC cluster: per-round Lemma 10 derandomization (PRG chunks,
// palette exchange, distributed conditional expectations, commit) and the
// Theorem 12 greedy base case on machine 0 — no shared-memory shortcuts.
// localSpace is s in words (0 picks a generous default); the engine
// records space high-water marks rather than failing, so callers can
// inspect how much space the run actually needed. Orders of magnitude
// slower than Solve; intended for model-faithful validation and teaching.
//
// SolveOnMPC is the compatibility wrapper over the default Solver; use
// Solver.SolveOnMPC for cancellation, scoped workers, tracing, and the
// fault-tolerance options (WithMPCRetry, WithMPCFallback, WithMPCFaults).
func SolveOnMPC(in *Instance, localSpace int, seedBits int, opts ...MPCOption) (*MPCResult, error) {
	return defaultSolver().SolveOnMPC(context.Background(), in, localSpace, seedBits, opts...)
}

// --- MIS (the framework's second application) -------------------------------

// MISResult is a maximal-independent-set outcome.
type MISResult struct {
	InSet  []int32
	Rounds int
}

// MISDeterministic computes an MIS with the derandomized Luby algorithm
// (the paper's Definition 5 worked example). It is the compatibility
// wrapper over the default Solver; use Solver.MIS for cancellation,
// scoped workers, and tracing.
func MISDeterministic(g *Graph) MISResult {
	// The background context never cancels, and cancellation is the only
	// error path, so the error is structurally nil here.
	r, _ := defaultSolver().MIS(context.Background(), g)
	return r
}

// MISRandomized computes an MIS with Luby's randomized algorithm.
func MISRandomized(g *Graph, seed uint64) MISResult {
	r := mis.Randomized(g, seed, 10*64)
	return MISResult{InSet: r.InSetNodes(), Rounds: r.Rounds}
}
