GO ?= go

.PHONY: all build test race vet vet-bitset fmt bench bench-smoke bench-diff bench-kernel bench-kernel-diff test-chaos bench-scale bench-scale-smoke bench-scale-diff test-serve bench-serving bench-serving-smoke bench-serving-diff

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# test-chaos runs the fault-injection surface under the race detector:
# the injector's own unit/fuzz corpus, the mpc cancellation/retry tests,
# and the parcolor-level chaos differential suite (3 fixed seeds ×
# drop/straggler/crash schedules pinning "bit-identical to the fault-free
# oracle, or a classified error — never silently wrong").
test-chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Cancel|Retry|Example' \
		./internal/faultinject ./internal/mpc .

vet:
	$(GO) vet ./...

# vet-bitset is the dedicated vet gate for the word-parallel mask layer:
# every engine's per-seed state rides this package, so it stays vet-clean
# on its own (CI runs it even if the broad vet target is ever narrowed).
vet-bitset:
	$(GO) vet ./internal/bitset/...

fmt:
	gofmt -l .

# bench-smoke runs every benchmark exactly once: the CI smoke step that
# keeps the benchmark suite compiling and terminating.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# HOST_FINGERPRINT keys recorded bench baselines to the machine that
# produced them: benchdiff gates hard only when the two streams' hosts
# match, and downgrades regressions to warnings across hardware.
# Lazily expanded (=) so the sub-shells run only for targets that use it.
HOST_FINGERPRINT = $(shell $(GO) env GOOS)-$(shell $(GO) env GOARCH)-$(shell hostname)-$(shell nproc 2>/dev/null || echo ncpu)

# bench regenerates the seed-selection benchmark suite (the contribution-
# table engine vs its naive oracles in deframe, mis and lowdeg, plus the
# synthetic condexp shape) as a machine-readable test2json stream — with
# the recording host's fingerprint as the first line — so the perf
# trajectory is diffable across PRs and baselines are keyed per machine.
bench:
	@echo '{"Host":"$(HOST_FINGERPRINT)"}' > BENCH_seed_selection.json
	$(GO) test -run '^$$' -bench 'SeedSelection' -benchmem -count 1 -json \
		./internal/condexp ./internal/deframe ./internal/mis ./internal/lowdeg \
		>> BENCH_seed_selection.json
	@echo "wrote BENCH_seed_selection.json (host $(HOST_FINGERPRINT))"

# bench-diff gates the mask-based engine path against a recorded baseline
# stream: any table/* row more than 10% slower fails the target — when
# the baseline carries this host's fingerprint. On a host mismatch the
# comparison prints warnings and exits 0. The default baseline
# (BENCH_seed_selection_flat.json, captured just before the bitset
# refactor) predates host keying, so against it the gate is advisory
# everywhere; to gate hard on your machine, record a stamped snapshot
# once (`make bench && cp BENCH_seed_selection.json BENCH_baseline_$$(hostname).json`)
# and pass it via BENCH_BASELINE. Regenerate the current stream with
# `make bench` first.
BENCH_BASELINE ?= BENCH_seed_selection_flat.json
bench-diff:
	$(GO) run ./cmd/benchdiff -old $(BENCH_BASELINE) \
		-new BENCH_seed_selection.json -tol 0.10 -filter table/

# bench-kernel streams the internal/kernel microbenchmarks — the
# unit-stride row add/reduce, compare-and-movemask, blocked-transpose,
# popcount and and-not inner loops under the seed-major tables — into
# BENCH_kernel.json, host-stamped like the seed-selection stream. Every
# kernel emits one row per dispatch path (dispatch=generic vs
# dispatch=avx2 on capable amd64 hosts), so the committed stream records
# the scalar-vs-vector gap, not just one number per shape.
bench-kernel:
	@echo '{"Host":"$(HOST_FINGERPRINT)"}' > BENCH_kernel.json
	$(GO) test -run '^$$' -bench 'Kernel' -benchmem -count 1 -json ./internal/kernel \
		>> BENCH_kernel.json
	@echo "wrote BENCH_kernel.json (host $(HOST_FINGERPRINT))"

# bench-kernel-diff gates the kernel stream against a recorded baseline
# at the same >10% threshold as the other streams (hard only when the
# baseline carries this host's fingerprint; advisory across hardware).
# Snapshot a baseline once per machine:
#   make bench-kernel && cp BENCH_kernel.json BENCH_kernel_$$(hostname).json
BENCH_KERNEL_BASELINE ?= BENCH_kernel.json
bench-kernel-diff:
	$(GO) run ./cmd/benchdiff -old $(BENCH_KERNEL_BASELINE) \
		-new BENCH_kernel.json -tol 0.10 -filter Kernel

# bench-scale sweeps the derandomized deframe solver and the classical
# randomized baselines (Jones–Plassmann, Luby) across graph sizes up to
# 10^6 vertices on gnp and Chung–Lu power-law workloads, streaming wall
# time, rounds, peak live heap and color count into BENCH_scale.json
# (host-stamped, benchdiff-gateable like the other streams). The full
# sweep takes minutes; CI runs bench-scale-smoke instead.
bench-scale:
	$(GO) run ./cmd/scalebench -sizes 10000,100000,1000000 -out BENCH_scale.json
	@echo "wrote BENCH_scale.json"

# bench-scale-smoke is the CI leg: a small-n sweep that keeps the whole
# harness (generators, baselines, stream format) exercised in seconds.
bench-scale-smoke:
	$(GO) run ./cmd/scalebench -sizes 2000 -out BENCH_scale_smoke.json
	$(GO) run ./cmd/benchdiff -old BENCH_scale_smoke.json -new BENCH_scale_smoke.json \
		-tol 0.10 -filter Scale/ > /dev/null
	@echo "scale smoke ok (stream parses and self-diffs clean)"

# bench-scale-diff gates BENCH_scale.json rows against a recorded
# baseline at the same >10% threshold as the kernel stream. Snapshot a
# baseline once per machine:
#   make bench-scale && cp BENCH_scale.json BENCH_scale_$$(hostname).json
BENCH_SCALE_BASELINE ?= BENCH_scale.json
bench-scale-diff:
	$(GO) run ./cmd/benchdiff -old $(BENCH_SCALE_BASELINE) \
		-new BENCH_scale.json -tol 0.10 -filter Scale/

# test-serve runs the HTTP serving layer and its trace dependency under
# the race detector: the request-path cancellation tests, the overload /
# 429 shedding test and the cache canonicalization suite all exercise
# cross-goroutine state on purpose.
test-serve:
	$(GO) test -race -count=1 ./internal/serve ./internal/trace

# bench-serving drives a mixed workload (3 generators × 2 sizes × 3
# algorithms, 50% repeats hitting the content-addressed cache) against
# an in-process colord over loopback HTTP and records serving latency
# percentiles, inverse throughput and cache hit rate as a host-stamped
# test2json stream — the serving-layer analogue of `make bench-scale`.
bench-serving:
	$(GO) run ./cmd/loadgen -inprocess -duration 20s -concurrency 8 \
		-repeat 0.5 -out BENCH_serving.json
	@echo "wrote BENCH_serving.json"

# bench-serving-smoke is the CI leg: a short in-process run that keeps
# the whole serving pipeline (server, loadgen, stream format, benchdiff
# parse) exercised in seconds, self-diffed so format drift fails fast.
bench-serving-smoke:
	$(GO) run ./cmd/loadgen -inprocess -duration 5s -requests 60 -concurrency 4 \
		-sizes 200,400 -out BENCH_serving_smoke.json
	$(GO) run ./cmd/benchdiff -old BENCH_serving_smoke.json -new BENCH_serving_smoke.json \
		-tol 0.10 -filter Serving/ > /dev/null
	@echo "serving smoke ok (stream parses and self-diffs clean)"

# bench-serving-diff gates BENCH_serving.json rows (all lower-is-better:
# p50/p99 latency, ns per solve) against a recorded baseline at the same
# >10% threshold as the other streams. Snapshot a baseline once per
# machine:
#   make bench-serving && cp BENCH_serving.json BENCH_serving_$$(hostname).json
BENCH_SERVING_BASELINE ?= BENCH_serving.json
bench-serving-diff:
	$(GO) run ./cmd/benchdiff -old $(BENCH_SERVING_BASELINE) \
		-new BENCH_serving.json -tol 0.10 -filter Serving/
