GO ?= go

.PHONY: all build test race vet vet-bitset fmt bench bench-smoke bench-diff

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# vet-bitset is the dedicated vet gate for the word-parallel mask layer:
# every engine's per-seed state rides this package, so it stays vet-clean
# on its own (CI runs it even if the broad vet target is ever narrowed).
vet-bitset:
	$(GO) vet ./internal/bitset/...

fmt:
	gofmt -l .

# bench-smoke runs every benchmark exactly once: the CI smoke step that
# keeps the benchmark suite compiling and terminating.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench regenerates the seed-selection benchmark suite (the contribution-
# table engine vs its naive oracles in deframe, mis and lowdeg, plus the
# synthetic condexp shape) as a machine-readable test2json stream, so the
# perf trajectory is diffable across PRs.
bench:
	$(GO) test -run '^$$' -bench 'SeedSelection' -benchmem -count 1 -json \
		./internal/condexp ./internal/deframe ./internal/mis ./internal/lowdeg \
		> BENCH_seed_selection.json
	@echo "wrote BENCH_seed_selection.json"

# bench-diff gates the mask-based engine path against the recorded flat
# numbers (BENCH_seed_selection_flat.json, captured on the same machine
# just before the bitset refactor): any table/* row more than 10% slower
# than its recorded baseline fails the target. Regenerate the current
# stream with `make bench` first.
bench-diff:
	$(GO) run ./cmd/benchdiff -old BENCH_seed_selection_flat.json \
		-new BENCH_seed_selection.json -tol 0.10 -filter table/
