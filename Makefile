GO ?= go

.PHONY: all build test race vet fmt bench bench-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# bench-smoke runs every benchmark exactly once: the CI smoke step that
# keeps the benchmark suite compiling and terminating.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench regenerates the seed-selection benchmark suite (the contribution-
# table engine vs its naive oracles in deframe, mis and lowdeg, plus the
# synthetic condexp shape) as a machine-readable test2json stream, so the
# perf trajectory is diffable across PRs.
bench:
	$(GO) test -run '^$$' -bench 'SeedSelection' -benchmem -count 1 -json \
		./internal/condexp ./internal/deframe ./internal/mis ./internal/lowdeg \
		> BENCH_seed_selection.json
	@echo "wrote BENCH_seed_selection.json"
