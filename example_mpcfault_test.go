package parcolor_test

import (
	"context"
	"fmt"
	"time"

	"parcolor"
)

// A transient fault window (machine 3 silently dropping traffic for the
// first two delivery ticks) is recovered by per-phase retries alone: the
// faulted phase re-runs after a backoff, the schedule clock has moved
// past the window, and the solve completes without degradation.
func ExampleWithMPCRetry() {
	solver, err := parcolor.NewSolver()
	if err != nil {
		fmt.Println(err)
		return
	}
	in := parcolor.TrivialPalettes(parcolor.GenerateGraph("cycle", 32, 1))
	res, err := solver.SolveOnMPC(context.Background(), in, 0, 5,
		parcolor.WithMPCFaults(parcolor.FaultSchedule{
			Crashes: []parcolor.CrashSpan{{Machine: 3, From: 0, To: 2, Silent: true}},
		}),
		parcolor.WithMPCRetry(parcolor.MPCRetryPolicy{
			MaxAttempts: 5,
			BaseBackoff: 100 * time.Microsecond,
		}),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("proper:", parcolor.Verify(in, res.Coloring) == nil)
	fmt.Println("recovered by retry:", res.Retries > 0 && !res.Degraded)
	// Output:
	// proper: true
	// recovered by retry: true
}

// A machine that never restarts defeats any retry budget; with a
// fallback armed the solve degrades to a fresh fault-free in-process
// cluster instead of failing, and — because the protocol is
// deterministic — returns the exact coloring a fault-free run produces.
func ExampleWithMPCFallback() {
	solver, err := parcolor.NewSolver()
	if err != nil {
		fmt.Println(err)
		return
	}
	in := parcolor.TrivialPalettes(parcolor.GenerateGraph("cycle", 32, 1))
	res, err := solver.SolveOnMPC(context.Background(), in, 0, 5,
		parcolor.WithMPCFaults(parcolor.FaultSchedule{
			Crashes: []parcolor.CrashSpan{{Machine: 0, From: 0, To: -1}},
		}),
		parcolor.WithMPCRetry(parcolor.MPCRetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: 100 * time.Microsecond,
		}),
		parcolor.WithMPCFallback(true),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	oracle, err := solver.SolveOnMPC(context.Background(), in, 0, 5)
	if err != nil {
		fmt.Println(err)
		return
	}
	same := true
	for v, c := range res.Coloring.Colors {
		if oracle.Coloring.Colors[v] != c {
			same = false
		}
	}
	fmt.Println("degraded:", res.Degraded)
	fmt.Println("bit-identical to fault-free run:", same)
	// Output:
	// degraded: true
	// bit-identical to fault-free run: true
}
