package parcolor_test

// End-to-end integration matrix: every algorithm × every workload × three
// palette families × multiple seeds, each run verified. This is the
// repository's broadest correctness sweep; the per-package tests pin the
// pieces, this pins the composition.

import (
	"fmt"
	"testing"

	"parcolor"
)

func paletteFamilies(g *parcolor.Graph, seed uint64) map[string]*parcolor.Instance {
	return map[string]*parcolor.Instance{
		"trivial": parcolor.TrivialPalettes(g),
		"delta+1": parcolor.DeltaPlus1Palettes(g),
		"random":  parcolor.RandomPalettes(g, 2, 4*(g.MaxDegree()+2), seed),
	}
}

func TestIntegrationMatrix(t *testing.T) {
	algorithms := []parcolor.Algorithm{
		parcolor.Deterministic,
		parcolor.Randomized,
		parcolor.GreedySequential,
		parcolor.LowDegreeDeterministic,
	}
	for _, name := range parcolor.GraphNames() {
		g := parcolor.GenerateGraph(name, 90, 3)
		for pal, in := range paletteFamilies(g, 3) {
			for _, alg := range algorithms {
				t.Run(fmt.Sprintf("%s/%s/%s", name, pal, alg), func(t *testing.T) {
					res, err := parcolor.Solve(in, parcolor.Options{Algorithm: alg, Seed: 11, SeedBits: 4})
					if err != nil {
						t.Fatal(err)
					}
					// Solve verifies internally; double-check the count.
					if res.Coloring.UncoloredCount() != 0 {
						t.Fatal("incomplete coloring")
					}
				})
			}
		}
	}
}

func TestIntegrationDeterminismMatrix(t *testing.T) {
	// The two deterministic algorithms must be bit-identical across runs
	// and worker counts on every workload.
	for _, name := range parcolor.GraphNames() {
		in := parcolor.TrivialPalettes(parcolor.GenerateGraph(name, 80, 9))
		for _, alg := range []parcolor.Algorithm{parcolor.Deterministic, parcolor.LowDegreeDeterministic} {
			ref, err := parcolor.Solve(in, parcolor.Options{Algorithm: alg, SeedBits: 4, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3} {
				got, err := parcolor.Solve(in, parcolor.Options{Algorithm: alg, SeedBits: 4, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				for v := range ref.Coloring.Colors {
					if ref.Coloring.Colors[v] != got.Coloring.Colors[v] {
						t.Fatalf("%s/%s: workers=%d diverged at node %d", name, alg, workers, v)
					}
				}
			}
		}
	}
}

func TestIntegrationRandomizedSeedSweep(t *testing.T) {
	// The randomized solver must be correct across many seeds (its w.h.p.
	// guarantees are backed by the greedy fallback, so correctness is
	// unconditional; this sweep would catch any conflict-resolution bug).
	in := parcolor.TrivialPalettes(parcolor.GenerateGraph("mixed", 150, 1))
	for seed := uint64(0); seed < 12; seed++ {
		if _, err := parcolor.Solve(in, parcolor.Options{Algorithm: parcolor.Randomized, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestIntegrationLargerDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// One larger end-to-end deterministic run exercising sparsification
	// (dense instance forces partitioning) with full verification.
	in := parcolor.TrivialPalettes(parcolor.GenerateGraph("gnp-dense", 500, 2))
	res, err := parcolor.Solve(in, parcolor.Options{SeedBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sparsify == nil || res.Sparsify.Partitions == 0 {
		t.Fatalf("dense 500-node instance should trigger sparsification: %+v", res.Sparsify)
	}
	if res.Sparsify.MaxDegreeRatio >= 1 {
		t.Fatalf("Lemma 23 ratio %f", res.Sparsify.MaxDegreeRatio)
	}
}
